"""E16 — ablation: the Section 3 rewrite rules, measured.

Selection pushdown through a product shrinks the peak intermediate
standard-encoding size from O(|A| * |B|) to O(match * |B|); MAP fusion
removes a whole pass.  The benchmark measures both with and without
the optimizer on growing inputs — the ablation DESIGN.md calls out.
"""

from __future__ import annotations

from benchmarks.conftest import emit_table
from repro.core.bag import Bag, Tup
from repro.core.derived import select_attr_eq_const
from repro.core.eval import Evaluator
from repro.core.expr import Attribute, Lam, Map, Tupling, Var, var
from repro.core.types import flat_bag_type
from repro.optimizer import Optimizer, estimated_cost


def _tables(n: int):
    a = Bag([Tup(str(i), "hit" if i == 0 else "miss")
             for i in range(n)])
    b = Bag([Tup(str(i)) for i in range(n)])
    return {"A": a, "B": b}


def test_e16_selection_pushdown(benchmark):
    schema = {"A": flat_bag_type(2), "B": flat_bag_type(1)}
    optimizer = Optimizer(schema=schema)
    query = select_attr_eq_const(var("A") * var("B"), 2, "hit")
    optimized = optimizer.optimize(query)

    rows = []
    for n in (8, 16, 32, 64):
        database = _tables(n)
        naive, clever = Evaluator(), Evaluator()
        naive_result = naive.run(query, database)
        clever_result = clever.run(optimized, database)
        assert naive_result == clever_result
        rows.append((n, naive.stats.peak_encoding_size,
                     clever.stats.peak_encoding_size,
                     f"{naive.stats.peak_encoding_size / clever.stats.peak_encoding_size:.1f}x"))
    emit_table(
        "e16_pushdown",
        "E16a  selection pushdown through x: peak intermediate "
        "encoding size, naive vs optimized",
        ["n per table", "naive peak", "optimized peak", "saving"],
        rows)

    database = _tables(32)
    benchmark(lambda: Evaluator().run(optimized, database))


def test_e16_map_fusion(benchmark):
    inner = Lam("t", Tupling(Attribute(Var("t"), 2),
                             Attribute(Var("t"), 1)))
    outer = Lam("s", Tupling(Attribute(Var("s"), 1)))
    query = Map(outer, Map(inner, var("A")))
    optimizer = Optimizer()
    fused = optimizer.optimize(query)

    rows = []
    for n in (16, 64, 256):
        database = _tables(n)
        naive, clever = Evaluator(), Evaluator()
        assert naive.run(query, database) == clever.run(fused, database)
        rows.append((n, naive.stats.nodes_evaluated,
                     clever.stats.nodes_evaluated))
    emit_table(
        "e16_fusion",
        "E16b  MAP fusion: evaluator node executions, two passes vs "
        "one",
        ["n", "unfused node evals", "fused node evals"], rows)
    assert estimated_cost(fused) < estimated_cost(query)

    database = _tables(128)
    benchmark(lambda: Evaluator().run(fused, database))


def test_e16_rule_hit_counts(benchmark):
    """How often each algebraic cleanup fires on a noisy query."""
    from repro.core.expr import Const, Dedup
    from repro.core.bag import EMPTY_BAG
    noisy = Dedup(Dedup((var("A") + Const(EMPTY_BAG)) - (
        var("A") - var("A"))))
    optimizer = Optimizer()
    cleaned = optimizer.optimize(noisy)
    rows = [("input nodes", noisy.size()),
            ("output nodes", cleaned.size()),
            ("rewrites applied", optimizer.rewrites_applied)]
    emit_table(
        "e16_rules",
        "E16c  algebraic cleanups on a redundant query",
        ["measure", "value"], rows)
    assert cleaned.size() < noisy.size()

    benchmark(lambda: Optimizer().optimize(noisy))


def test_e16_cardinality_estimates(benchmark):
    """The estimator's predictions vs measured outputs on the pushdown
    workload — the numbers a cost-based optimizer would plan with."""
    from repro.core.eval import evaluate
    from repro.optimizer import estimate, stats_of

    rows = []
    for n in (8, 16, 32):
        database = _tables(n)
        statistics = {name: stats_of(bag)
                      for name, bag in database.items()}
        query = select_attr_eq_const(var("A") * var("B"), 2, "hit")
        predicted = estimate(query, statistics, selectivity=1 / n)
        actual = evaluate(query, database)
        rows.append((n, f"{predicted.cardinality:.0f}",
                     actual.cardinality,
                     f"{predicted.cardinality / max(actual.cardinality, 1):.1f}x"))
    emit_table(
        "e16_cardinality",
        "E16d  cardinality estimates (selectivity 1/n) vs measured "
        "output sizes",
        ["n per table", "estimated", "measured", "ratio"], rows)

    database = _tables(16)
    statistics = {name: stats_of(bag) for name, bag in database.items()}
    query = select_attr_eq_const(var("A") * var("B"), 2, "hit")
    benchmark(lambda: estimate(query, statistics))
