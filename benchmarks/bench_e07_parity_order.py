"""E07 — Section 4: parity of a relation's cardinality with an order.

The paper exhibits a BALG^1 expression (with order comparisons) whose
nonemptiness is the parity of |R| — a query that is not first-order
even with order, and not BALG^1 *without* order ([LW94]).  The
benchmark validates the expression exhaustively over a size sweep and
under order-preserving renamings (genericity with respect to <).
"""

from __future__ import annotations

from benchmarks.conftest import emit_table
from repro.core.bag import Bag, Tup
from repro.core.database import apply_renaming
from repro.core.derived import is_nonempty, parity_even_expr
from repro.core.eval import evaluate
from repro.core.expr import var


def test_e07_parity_sweep(benchmark):
    query = parity_even_expr(var("R"))
    rows = []
    for n in range(1, 13):
        relation = Bag([Tup(i) for i in range(n)])
        verdict = is_nonempty(evaluate(query, R=relation))
        assert verdict == (n % 2 == 0)
        rows.append((n, verdict, n % 2 == 0, "agree"))
    emit_table(
        "e07_parity",
        "E07  parity of |R| via the order trick "
        "(sigma over witnesses x with #{y<=x} = #{y>x})",
        ["|R|", "query verdict", "ground truth", "status"], rows)

    relation = Bag([Tup(i) for i in range(10)])
    benchmark(lambda: evaluate(query, R=relation))


def test_e07_order_genericity(benchmark):
    """Order-preserving renamings keep the verdict; the witness element
    moves with the order."""
    query = parity_even_expr(var("R"))
    base = Bag([Tup(i) for i in range(6)])
    monotone = apply_renaming(base, {i: i * 10 + 3 for i in range(6)})
    assert is_nonempty(evaluate(query, R=base)) == is_nonempty(
        evaluate(query, R=monotone))

    # and on strings, whose order the canonical key also respects
    strings = Bag([Tup(c) for c in "abcdef"])
    assert is_nonempty(evaluate(query, R=strings))

    benchmark(lambda: evaluate(query, R=monotone))
