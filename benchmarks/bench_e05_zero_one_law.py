"""E05 — Example 4.2 and the failure of the 0-1 law.

Paper claims: the BALG^1-definable property ``card(R) > card(S)`` has
asymptotic probability 1/2 (via [FGT93]); constant-free relational
properties have probability 0 or 1.  The benchmark estimates mu_n for
both by Monte-Carlo over growing domains — the BALG^1 series hugs 1/2
while the relational controls pin to the extremes.
"""

from __future__ import annotations

from benchmarks.conftest import emit_table
from repro.complexity import probability_series, random_unary_relation
from repro.core.derived import card_greater_expr, is_nonempty
from repro.core.eval import evaluate
from repro.core.expr import var

SIZES = [4, 8, 16, 32, 64]
TRIALS = 400


def _algebra_bigger(r, s) -> bool:
    return is_nonempty(evaluate(card_greater_expr(var("R"), var("S")),
                                R=r, S=s))


def test_e05_cardinality_probability(benchmark):
    series = probability_series(
        lambda r, s: r.cardinality > s.cardinality,
        [random_unary_relation, random_unary_relation],
        sizes=SIZES, trials=TRIALS, seed=5)
    rows = [(estimate.n, f"{estimate.probability:.3f}",
             f"{estimate.standard_error:.3f}", "1/2")
            for estimate in series]
    emit_table(
        "e05_half",
        "E05a  mu_n(card R > card S): converges to 1/2 — no 0-1 law "
        "for BALG^1",
        ["n", "estimate", "std err", "paper limit"], rows)
    # convergence: the largest sizes sit near 1/2
    for estimate in series[-2:]:
        assert abs(estimate.probability - 0.5) < 0.12

    # the algebra query itself agrees with the native comparison
    import random as _random
    rng = _random.Random(99)
    for _ in range(10):
        r = random_unary_relation(12, rng)
        s = random_unary_relation(12, rng)
        assert _algebra_bigger(r, s) == (r.cardinality > s.cardinality)

    rng2 = _random.Random(1)
    r = random_unary_relation(16, rng2)
    s = random_unary_relation(16, rng2)
    benchmark(lambda: _algebra_bigger(r, s))


def test_e05_relational_controls(benchmark):
    # two constant-free relational properties: tails at 1 and 0
    nonempty = probability_series(
        lambda r: not r.is_empty(), [random_unary_relation],
        sizes=SIZES, trials=TRIALS, seed=6)
    full = probability_series(
        lambda r: r.cardinality == 0, [random_unary_relation],
        sizes=SIZES, trials=TRIALS, seed=7)
    rows = [(size, f"{one.probability:.3f}", f"{zero.probability:.3f}")
            for size, one, zero in zip(SIZES, nonempty, full)]
    emit_table(
        "e05_zero_one",
        "E05b  relational controls obey the 0-1 law "
        "(mu_n -> 1 and mu_n -> 0)",
        ["n", "mu(R nonempty)", "mu(R empty)"], rows)
    assert nonempty[-1].probability == 1.0
    assert full[-1].probability == 0.0

    benchmark(lambda: probability_series(
        lambda r: not r.is_empty(), [random_unary_relation],
        sizes=[16], trials=50, seed=8))
