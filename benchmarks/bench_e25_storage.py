"""E25 — storage subsystem: load throughput, catalog-driven compiles,
and data-driven plan quality.

The storage layer (`repro.storage`) gave the engine persistent
workspaces and an ANALYZE catalog; this battery measures what the
persistence round-trip costs and what the statistics buy, in four
parts:

* **load throughput** — synthesize a zipfian relation at increasing
  scales, then time the workspace save / load / ANALYZE legs
  separately; the round-trip is asserted bag-identical before any
  timing is kept, so the rows/sec numbers are for *correct* codecs.
* **compile overhead** — the same query compiled against an analyzed
  workspace (statistics answered from the catalog, zero bag scans —
  asserted via the planner's scan counter) vs a cold catalog-less
  compile (``clear_stats_memo`` before every repetition, so each one
  re-scans the bound bags the way a first-contact compile does).
  Scans are counter-cheap on in-memory bags, so the honest claims are
  the scan *counts* (0 vs one per relation) and a hard ceiling on the
  catalog-driven compile, not a wall-clock race.
* **plan quality** — end-to-end execution at opt 0 (naive lowering,
  no statistics) vs opt 2 with the workspace catalog on a skewed
  join, bag-equality asserted before timing; plus the plan-shape
  flip: a join through a rare-value filter builds its hash table on
  the wrong side under the flat selectivity default and on the
  filtered side once the catalog's histogram knows the value is rare.
* **q-error trend** — most-common-value selections at three scales,
  estimated with the catalog's histogram selectivity vs the flat
  default, against the measured cardinality.  Catalog q-error must
  stay ~1 at every scale while the flat default drifts.

Acceptance: catalog compiles perform zero bag scans and stay under
``COMPILE_CEILING``, the build-side flip happens, the catalog's worst
selection q-error stays under ``QERROR_CAP`` while never exceeding
the flat default's, and (full tier) opt 2 with statistics beats opt 0
by >= ``SPEEDUP_FLOOR`` on the join workload.

Results persist to ``results/e25_storage.txt`` (human table),
``results/e25_storage.json`` (machine-readable, consumed by
``benchmarks/collect.py``), and ``results/e25_storage.status.json``.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import (
    RESULTS_DIR, emit_table, governed_cell,
)
from repro.core.eval import evaluate as oracle_evaluate
from repro.core.expr import (
    Attribute, Cartesian, Const, Dedup, Lam, Select, Var, var,
)
from repro.engine import evaluate, plan_for
from repro.guard import Limits
from repro.planner import PassConfig, PlanContext
from repro.planner import compile as planner_compile
from repro.planner.stats import (
    clear_stats_memo, estimate, stats_scan_count,
)
from repro.storage import RelationSpec, Workspace
from repro.storage.generate import synthesize_bag

EXPERIMENT = "e25_storage"

SMOKE = bool(os.environ.get("E25_SMOKE"))

COMPILE_REPS = 10 if SMOKE else 25
SPEEDUP_FLOOR = 1.5
#: ceiling on one catalog-driven opt-2 compile (seconds) — the
#: catalog must keep compilation in interactive territory
COMPILE_CEILING = 0.05
#: worst tolerated q-error for catalog-estimated MCV selections —
#: the histogram stores exact fractions, so ~1 up to float noise
QERROR_CAP = 1.05

LOAD_SCALES = (1_000,) if SMOKE else (10_000, 40_000)
COMPILE_ROWS = 2_000 if SMOKE else 20_000
QUALITY_ROWS = (100, 400) if SMOKE else (1_500, 6_000)
QERROR_SCALES = (50, 200) if SMOKE else (100, 400, 1600)

LIMITS = Limits(max_steps=500_000_000, timeout=300.0)


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _attr_eq_const(relation, index, value, op="eq"):
    return Select(Lam("t", Attribute(Var("t"), index)),
                  Lam("t", Const(value)), Var(relation), op=op)


def _q_error(estimated, actual):
    if estimated <= 0 or actual <= 0:
        return float("inf")
    return max(estimated / actual, actual / estimated)


def _workspace(root, specs, seed):
    ws = Workspace.create(str(root))
    ws.generate(specs, seed=seed)
    ws.analyze()
    return ws


# ----------------------------------------------------------------------
# The experiment
# ----------------------------------------------------------------------


def test_e25_storage(benchmark, tmp_path):
    rows = []
    ledger = {"experiment": EXPERIMENT, "smoke": SMOKE,
              "load": [], "compile": {}, "quality": [], "qerror": []}

    # -- part 1: load throughput --------------------------------------
    for scale in LOAD_SCALES:
        spec = RelationSpec("L", rows=scale, arity=2,
                            distinct=max(4, scale // 5),
                            domain=max(4, scale // 4),
                            skew="zipfian", zipf_s=1.2)
        bag = synthesize_bag(spec, seed=scale)
        root = str(tmp_path / f"load-{scale}")
        ws = Workspace.create(root)
        _, save_seconds = _timed(lambda: ws.save_relation("L", bag))
        # reopen so the load actually decodes from disk instead of
        # answering from the writer's in-memory cache
        reader = Workspace.open(root)
        reloaded, load_seconds = _timed(
            lambda: reader.load_relation("L"))
        # correctness before throughput: the round-trip must be
        # bag-identical, duplicates and all
        assert reloaded == bag
        _, analyze_seconds = _timed(lambda: ws.analyze(["L"]))
        ledger["load"].append(
            {"rows": scale, "distinct": bag.distinct_count,
             "save_seconds": save_seconds,
             "load_seconds": load_seconds,
             "analyze_seconds": analyze_seconds,
             "save_rows_per_sec": scale / max(save_seconds, 1e-9),
             "load_rows_per_sec": scale / max(load_seconds, 1e-9)})
        rows.append((f"load:{scale}", "save/load/analyze",
                     f"{scale / max(save_seconds, 1e-9):,.0f} rows/s",
                     f"{scale / max(load_seconds, 1e-9):,.0f} rows/s",
                     f"analyze {analyze_seconds * 1e3:.1f}ms"))

    # -- part 2: catalog-vs-scan compile overhead ---------------------
    compile_ws = _workspace(
        tmp_path / "compile",
        (RelationSpec("R", rows=COMPILE_ROWS, arity=2,
                      distinct=max(4, COMPILE_ROWS // 5),
                      domain=max(4, COMPILE_ROWS // 4)),
         RelationSpec("S", rows=COMPILE_ROWS, arity=2,
                      distinct=max(4, COMPILE_ROWS // 10),
                      domain=max(4, COMPILE_ROWS // 4),
                      skew="zipfian", zipf_s=1.3)),
        seed=7)
    database = compile_ws.database()
    query = Dedup(Select(Lam("t", Attribute(Var("t"), 2)),
                         Lam("t", Attribute(Var("t"), 3)),
                         Cartesian(var("R"), var("S"))))

    def compile_with_catalog():
        context = PlanContext.capture(
            database, engine="physical",
            config=PassConfig.for_level(2), catalog=compile_ws)
        return planner_compile(query, context)

    def compile_cold():
        clear_stats_memo()
        context = PlanContext.capture(
            database, engine="physical",
            config=PassConfig.for_level(2))
        return planner_compile(query, context)

    clear_stats_memo()
    before = stats_scan_count()
    catalog_total = 0.0
    for _ in range(COMPILE_REPS):
        _, seconds = _timed(compile_with_catalog)
        catalog_total += seconds
    catalog_scans = stats_scan_count() - before
    # the acceptance criterion: the whole catalog-driven loop never
    # touched the bound bags
    assert catalog_scans == 0, catalog_scans
    before = stats_scan_count()
    scan_total = 0.0
    for _ in range(COMPILE_REPS):
        _, seconds = _timed(compile_cold)
        scan_total += seconds
    cold_scans = stats_scan_count() - before
    assert cold_scans == 2 * COMPILE_REPS, cold_scans
    catalog_mean = catalog_total / COMPILE_REPS
    scan_mean = scan_total / COMPILE_REPS
    ledger["compile"] = {
        "rows_per_relation": COMPILE_ROWS, "reps": COMPILE_REPS,
        "catalog_mean_seconds": catalog_mean,
        "cold_scan_mean_seconds": scan_mean,
        "catalog_scans": catalog_scans, "cold_scans": cold_scans}
    rows.append(("compile", f"{COMPILE_ROWS} rows x2",
                 f"catalog {catalog_mean * 1e3:.2f}ms / 0 scans",
                 f"cold {scan_mean * 1e3:.2f}ms / "
                 f"{cold_scans} scans",
                 f"ceiling {COMPILE_CEILING * 1e3:.0f}ms"))

    # -- part 3: opt0 vs opt2-with-catalog plan quality ---------------
    r_rows, s_rows = QUALITY_ROWS
    quality_ws = _workspace(
        tmp_path / "quality",
        (RelationSpec("R", rows=r_rows, arity=2,
                      distinct=max(4, r_rows // 5),
                      domain=max(4, r_rows // 10)),
         RelationSpec("S", rows=s_rows, arity=2,
                      distinct=max(4, s_rows // 10),
                      domain=max(4, s_rows // 16),
                      skew="zipfian", zipf_s=1.3)),
        seed=13)
    quality_db = quality_ws.database()
    join = Dedup(Select(Lam("t", Attribute(Var("t"), 2)),
                        Lam("t", Attribute(Var("t"), 3)),
                        Cartesian(var("R"), var("S"))))

    seconds = {}
    reference = None
    for label, level, catalog in (("opt0", 0, None),
                                  ("opt2+catalog", 2, quality_ws)):

        def cell(governor, level=level, catalog=catalog):
            return _timed(lambda: evaluate(
                join, quality_db, cache=None, governor=governor,
                opt_level=level, catalog=catalog))

        outcome = governed_cell(EXPERIMENT, f"join-{label}", cell,
                                limits=LIMITS)
        assert outcome.status == "ok", outcome.status
        result, elapsed = outcome.value
        if reference is None:
            reference = result
        else:
            assert result == reference
        seconds[label] = elapsed
    quality_speedup = seconds["opt0"] / max(seconds["opt2+catalog"],
                                            1e-9)
    ledger["quality"].append(
        {"workload": "join", "opt0_seconds": seconds["opt0"],
         "opt2_catalog_seconds": seconds["opt2+catalog"],
         "speedup": quality_speedup})
    rows.append(("quality:join", "opt0 vs opt2+catalog",
                 f"{seconds['opt0'] * 1e3:.1f}ms",
                 f"{seconds['opt2+catalog'] * 1e3:.1f}ms",
                 f"{quality_speedup:.2f}x"))

    # the plan-shape lever: a join through a rare-value filter flips
    # its hash-join build side once the histogram knows the fraction
    tail = quality_ws.catalog.get("S").column_stats[0].mcv[-1][0]
    filtered_join = Select(
        Lam("t", Attribute(Var("t"), 1)),
        Lam("t", Attribute(Var("t"), 3)),
        Cartesian(var("R"), _attr_eq_const("S", 1, tail)), op="eq")
    flat_plan = plan_for(filtered_join, quality_db,
                         cache=None).render()
    informed_plan = plan_for(filtered_join, quality_db, cache=None,
                             catalog=quality_ws).render()
    flipped = ("build=left" in flat_plan
               and "build=right" in informed_plan)
    assert flipped, (flat_plan, informed_plan)
    ledger["quality"].append(
        {"workload": "build-side", "flipped": flipped})
    rows.append(("quality:build-side", "flat vs catalog plan",
                 "build=left", "build=right", "flipped"))

    # -- part 4: q-error trend across scales --------------------------
    worst_catalog_overall = 1.0
    for scale in QERROR_SCALES:
        ws = _workspace(
            tmp_path / f"qerror-{scale}",
            (RelationSpec("R", rows=scale, arity=2,
                          distinct=max(4, scale // 5),
                          domain=max(4, scale // 8)),
             RelationSpec("S", rows=scale, arity=2,
                          distinct=max(4, scale // 10),
                          domain=max(4, scale // 8),
                          skew="zipfian", zipf_s=1.3)),
            seed=scale)
        db = ws.database()
        statistics = {name: ws.catalog.get(name).bag_stats()
                      for name in ("R", "S")}
        oracle_fn = ws.selectivity_oracle()
        worst_catalog = worst_flat = 1.0
        for column in (1, 2):
            mcv = ws.catalog.get("S").column_stats[column - 1].mcv
            for value, _ in mcv[:3]:
                expr = _attr_eq_const("S", column, value)
                actual = oracle_evaluate(expr, db).cardinality
                informed = estimate(
                    expr, statistics,
                    selectivity_fn=oracle_fn).cardinality
                flat = estimate(expr, statistics).cardinality
                worst_catalog = max(worst_catalog,
                                    _q_error(informed, actual))
                worst_flat = max(worst_flat, _q_error(flat, actual))
        worst_catalog_overall = max(worst_catalog_overall,
                                    worst_catalog)
        ledger["qerror"].append(
            {"scale": scale, "catalog_q_error": worst_catalog,
             "flat_q_error": worst_flat})
        rows.append((f"qerror:{scale}", "mcv selections",
                     f"catalog {worst_catalog:.3f}",
                     f"flat {worst_flat:.3f}",
                     "ok" if worst_catalog <= worst_flat else "DRIFT"))
        # the histogram must never estimate worse than no histogram
        assert worst_catalog <= worst_flat, scale

    emit_table(
        EXPERIMENT,
        "E25  storage: load throughput, catalog compiles, data-driven "
        f"plans ({'smoke' if SMOKE else 'full'} tier)",
        ["cell", "config", "a", "b", "detail"],
        rows)

    ledger["quality_speedup"] = quality_speedup
    ledger["worst_catalog_q_error"] = worst_catalog_overall
    with open(os.path.join(RESULTS_DIR, f"{EXPERIMENT}.json"), "w",
              encoding="utf-8") as handle:
        json.dump(ledger, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert worst_catalog_overall <= QERROR_CAP, worst_catalog_overall
    # the catalog must keep compilation interactive
    assert catalog_mean < COMPILE_CEILING, catalog_mean
    if not SMOKE:
        # statistics must pay for themselves end-to-end
        assert quality_speedup >= SPEEDUP_FLOOR, quality_speedup

    # timing fixture: one catalog-driven opt-2 compile
    benchmark(compile_with_catalog)
