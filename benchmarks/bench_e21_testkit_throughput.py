"""E21 — conformance testkit throughput (systems, not a paper claim).

How expensive is a conformance case?  The differential harness runs
every generated case through up to seven backends; this bench measures
cases/sec per backend over a fixed deterministic stream (seed 0, the
same stream the CI `conformance` job fuzzes), plus the full matrix
with the metamorphic catalogue on top.  The numbers size the CI case
budget: 300 cases must fit comfortably in a CI minute.

Acceptance asserted here:

* zero mismatches across the stream on every backend combination
  (this is the `repro fuzz` acceptance run in miniature);
* the full matrix clears a conservative throughput floor.

Statuses persist to ``results/e21_testkit.status.json``; the table
goes to ``results/e21_testkit.txt``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit_table, governed_cell
from repro.testkit import Harness, RunSummary, generate_case
from repro.testkit.differential import DEFAULT_LIMITS

EXPERIMENT = "e21_testkit"

CASES = 120
SEED = 0

#: cell label -> (backends, metamorphic laws on?).
CELLS = [
    ("oracle", ("oracle",), False),
    ("engine-cold", ("oracle", "engine"), False),
    ("engine-warm", ("oracle", "engine-warm"), False),
    ("optimized", ("oracle", "optimized"), False),
    ("surface", ("oracle", "surface"), False),
    ("sql", ("oracle", "sql"), False),
    ("engine-parallel", ("oracle", "engine-parallel"), False),
    ("full-matrix+laws", None, True),  # None -> all seven backends
]

#: the full matrix must beat this (cases/sec); generous so slow CI
#: machines pass while a quadratic regression in the harness fails.
FLOOR_CPS = 5.0


def _run_stream(backends, metamorphic: bool) -> RunSummary:
    kwargs = {"limits": DEFAULT_LIMITS, "metamorphic": metamorphic}
    if backends is not None:
        kwargs["backends"] = backends
    harness = Harness(**kwargs)
    summary = RunSummary()
    for index in range(CASES):
        summary.absorb(harness.run_case(
            generate_case(SEED, index, fragment="mixed")))
    return summary


def test_e21_testkit_throughput(benchmark):
    rows = []
    full_cps = None
    for label, backends, metamorphic in CELLS:
        started = time.perf_counter()
        holder = {}

        def cell(governor, backends=backends,
                 metamorphic=metamorphic):
            holder["summary"] = _run_stream(backends, metamorphic)
            return holder["summary"]

        outcome = governed_cell(EXPERIMENT, label, cell)
        elapsed = time.perf_counter() - started
        summary = holder.get("summary")
        assert outcome.ok and summary is not None, label
        assert not summary.mismatches, (
            label, [m.describe() for m in summary.mismatches])
        cps = CASES / elapsed if elapsed > 0 else float("inf")
        if label == "full-matrix+laws":
            full_cps = cps
        governed = sum(summary.governed.values())
        unsupported = sum(summary.unsupported.values())
        rows.append((label, CASES, f"{elapsed:.2f}", f"{cps:.1f}",
                     governed, unsupported, summary.laws_checked))

    assert full_cps is not None and full_cps >= FLOOR_CPS, full_cps
    emit_table(
        "e21_testkit",
        f"E21  conformance throughput ({CASES} cases, seed {SEED}, "
        "mixed fragments)",
        ["backend set", "cases", "seconds", "cases/sec", "governed",
         "unsupported", "law checks"],
        rows)
    # timing row for regression tracking: one full-matrix case
    harness = Harness()
    case = generate_case(SEED, 7, fragment="mixed")
    benchmark(lambda: harness.run_case(case))
