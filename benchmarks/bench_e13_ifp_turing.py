"""E13 — Theorem 6.6: BALG^2 + IFP is Turing complete, measured.

The algebra-driven machine (configurations as bags, one IFP over the
step formula) is validated against the native simulator on three
machines and timed; the Theorem 6.1 computation-bag checkers run over
genuine and mutated encodings.
"""

from __future__ import annotations

from benchmarks.conftest import emit_table
from repro.machines import (
    computation_bag, is_legal_accepting_computation,
    last_symbol_machine, parity_machine, run_machine, simulate_via_ifp,
    unary_doubler,
)
from repro.core.bag import Bag


def test_e13_machine_agreement(benchmark):
    cases = [
        ("parity", parity_machine(),
         [[], ["1"], ["1", "1"], ["1", "1", "1"]]),
        ("doubler", unary_doubler(), [[], ["1"], ["1", "1"]]),
        ("last-symbol", last_symbol_machine(),
         [["a", "b"], ["b", "a"], ["b"]]),
    ]
    rows = []
    for name, machine, words in cases:
        for word in words:
            cells = len(word) + 2
            native = run_machine(machine, word, tape_cells=cells)
            algebra = simulate_via_ifp(machine, word,
                                       max_steps=len(word) + 3,
                                       tape_cells=cells)
            assert algebra.accepted == native.accepted
            assert algebra.steps == native.steps
            assert algebra.final_tape == native.final.tape
            rows.append((name, "".join(word) or "(empty)",
                         algebra.steps,
                         "accept" if algebra.accepted else "reject",
                         "agree"))
    emit_table(
        "e13_agreement",
        "E13a  Theorem 6.6: IFP-driven runs vs the native simulator "
        "(acceptance, steps, and tape all agree)",
        ["machine", "input", "steps", "verdict", "native"], rows)

    machine = parity_machine()
    benchmark(lambda: simulate_via_ifp(machine, ["1", "1"],
                                       max_steps=4, tape_cells=4))


def test_e13_computation_checkers(benchmark):
    machine = parity_machine()
    word = ["1", "1"]
    genuine = computation_bag(machine, word, max_steps=5, tape_cells=4)

    # the genuine bag passes; three mutations all fail
    mutations = {
        "genuine": (genuine, True),
        "dropped layer": (Bag(
            [t for t in genuine.distinct()
             if t.attribute(1).cardinality != 1]), False),
        "duplicated tuples": (Bag.from_counts(
            {t: 2 for t in genuine.distinct()}), False),
        "empty": (Bag(), False),
    }
    rows = []
    for name, (candidate, expected) in mutations.items():
        verdict = is_legal_accepting_computation(machine, candidate,
                                                 word)
        assert verdict == expected
        rows.append((name, candidate.cardinality, verdict))
    emit_table(
        "e13_checkers",
        "E13b  Theorem 6.1 selections phi1^phi2^phi3 accept exactly "
        "the genuine computation encoding",
        ["candidate", "tuples", "accepted by the selections"], rows)

    benchmark(lambda: is_legal_accepting_computation(machine, genuine,
                                                     word))


def test_e13_literal_construction(benchmark):
    """Theorem 6.1 run *literally* at the feasible scale: enumerate
    the powerset of a tiny candidate space and select with
    phi1^phi2^phi3 — exactly one survivor, the genuine computation."""
    from repro.machines import NO_HEAD
    from repro.machines.encode import (
        candidate_space, select_legal_computations,
    )
    machine = parity_machine()
    restricted = dict(symbols=["_"],
                      states=["even", "accept", NO_HEAD])
    space = candidate_space(machine, [], 1, 1, **restricted)
    survivors = select_legal_computations(machine, [], 1, 1,
                                          **restricted)
    genuine = computation_bag(machine, [], max_steps=1, tape_cells=1)
    assert survivors == [genuine]
    rows = [
        ("candidate tuples |D x D x A x Q|", len(space)),
        ("subsets enumerated (the powerset)", 2 ** len(space)),
        ("survivors of phi1 ^ phi2 ^ phi3", len(survivors)),
        ("survivor equals the genuine run", survivors == [genuine]),
    ]
    emit_table(
        "e13_literal",
        "E13c  Theorem 6.1 literally: select the accepting "
        "computation out of P(candidates)",
        ["measure", "value"], rows)

    benchmark(lambda: select_legal_computations(machine, [], 1, 1,
                                                **restricted))
