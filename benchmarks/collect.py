"""Consolidate the scattered benchmark outputs into one perf ledger.

The experiment batteries each persist a human table
(``results/<e>.txt``), a governed-status file
(``results/<e>.status.json``) and — from E22 on — a machine-readable
JSON.  This script distils the headline numbers of the *performance*
experiments into ``results/BENCH_TRAJECTORY.json``: one deterministic,
sorted, timestamp-free document per repository state, so successive
PRs accumulate a machine-readable perf trajectory instead of diffing
ASCII tables.

Collected headlines:

* **e20_engine** — final sym-diff speedup of the physical engine over
  the tree walker (the ``>= 5x`` acceptance number);
* **e21_testkit** — full-matrix differential throughput in cases/sec;
* **e22_parallel** — per-workload scaling cells (with bytes shipped
  per cell), the acceptance gates with their passed / failed /
  skipped-with-reason verdicts and the CPU count they were judged on,
  the codec-vs-pickle serialization bytes, and the governed-edge
  statuses;
* **e23_planner** — staged-planner compile overhead (worst mean
  compile across workloads and opt levels) and the opt0-vs-opt2
  end-to-end plan-quality speedups;
* **e24_resilience** — fault-tolerant parallel execution under
  injected worker-crash chaos: completion/retry/demotion counts per
  fault probability and the zero-fault latency overhead.
* **e25_storage** — workspace load throughput, catalog-vs-scan
  compile overhead (zero-scan compiles against ANALYZEd relations),
  the opt0-vs-opt2-with-catalog quality speedup, and the selection
  q-error trend of histogram vs flat selectivity across scales.
* **e26_columnar** — codegen engine (fused columnar closures, opt
  level 3) vs the stream engine: per-cell speedups on the three
  fused-pipeline headline cells, their gated geometric mean, and the
  report-only satellite rows.
* **e27_semiring** — the semiring-generalized multiplicity core: the
  gated N fast-path overhead pin (structural ``_sr``-free codegen
  source plus the measured tagged-vs-default ratio), and the
  report-only Bool-vs-N duplicate-heavy and provenance
  annotation-size cells.

Usage::

    PYTHONPATH=src python benchmarks/collect.py        # rewrite ledger
    PYTHONPATH=src python benchmarks/collect.py --check  # verify fresh

``--check`` exits non-zero when the persisted ledger disagrees with
what the current result files produce (CI guards against stale
ledgers this way).  Missing experiments are recorded as ``null`` —
the ledger never fails just because a battery has not been run.
"""

from __future__ import annotations

import json
import os
import re
import sys
from typing import Any, Dict, Optional

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
LEDGER = os.path.join(RESULTS_DIR, "BENCH_TRAJECTORY.json")


def _read(name: str) -> Optional[str]:
    path = os.path.join(RESULTS_DIR, name)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _statuses(experiment: str) -> Optional[Dict[str, str]]:
    text = _read(f"{experiment}.status.json")
    if text is None:
        return None
    document = json.loads(text)
    return {str(cell["cell"]): str(cell["status"])
            for cell in document.get("cells", [])}


def collect_e20() -> Optional[Dict[str, Any]]:
    """Headline: the last (largest) sym-diff row's speedup column."""
    text = _read("e20_engine.txt")
    if text is None:
        return None
    speedups = re.findall(
        r"^sym-diff\s+(\w+)\s+\(n=(\d+).*?([\d.]+)x\s*$",
        text, re.MULTILINE)
    if not speedups:
        return None
    label, size, speedup = speedups[-1]
    return {"headline": "sym-diff chain, engine vs tree walker",
            "cell": f"sym-diff {label} (n={size})",
            "speedup": float(speedup),
            "statuses": _statuses("e20_engine")}


def collect_e21() -> Optional[Dict[str, Any]]:
    """Headline: the full seven-way matrix's cases/sec."""
    text = _read("e21_testkit.txt")
    if text is None:
        return None
    match = re.search(
        r"^full-matrix\+laws\s+(\d+)\s+[\d.]+\s+([\d.]+)",
        text, re.MULTILINE)
    if match is None:
        return None
    return {"headline": "differential matrix throughput",
            "cases": int(match.group(1)),
            "cases_per_sec": float(match.group(2)),
            "statuses": _statuses("e21_testkit")}


def collect_e22() -> Optional[Dict[str, Any]]:
    """Headline: scaling cells, acceptance gates (passed / failed /
    skipped-with-reason), codec-vs-pickle bytes, governed edges."""
    text = _read("e22_parallel.json")
    if text is None:
        return None
    document = json.loads(text)
    workloads = {}
    for entry in document.get("workloads", []):
        folded = {
            "serial_seconds": round(entry["serial_seconds"], 4),
            "cells": [{"workers": cell["workers"],
                       "seconds": round(cell["seconds"], 4),
                       "speedup": round(cell["speedup"], 3),
                       "bytes_shipped": cell.get("bytes_shipped")}
                      for cell in entry["cells"]],
        }
        if "thread_2w_speedup" in entry:
            folded["thread_2w_speedup"] = round(
                entry["thread_2w_speedup"], 3)
        workloads[entry["workload"]] = folded
    serialization = document.get("serialization")
    if serialization is not None:
        serialization = {
            "morsels": serialization.get("morsels"),
            "codec_bytes": serialization.get("codec_bytes"),
            "pickle_bytes": serialization.get("pickle_bytes"),
            "bytes_ratio": round(
                serialization.get("bytes_ratio", 0.0), 3),
        }
    gates = document.get("gates")
    if gates is not None:
        gates = {name: {key: (round(value, 3)
                              if isinstance(value, float) else value)
                        for key, value in gate.items()}
                 for name, gate in gates.items()}
    return {"headline": "morsel-driven scaling, process backend",
            "smoke": document.get("smoke"),
            "cpu_count": document.get("cpu_count"),
            "speedup_at_4_workers": round(
                document.get("speedup_at_4_workers", 0.0), 3),
            "speedup_at_2_workers": round(
                document.get("speedup_at_2_workers", 0.0), 3),
            "gates": gates,
            "serialization": serialization,
            "workloads": workloads,
            "governed": document.get("governed"),
            "statuses": _statuses("e22_parallel")}


def collect_e23() -> Optional[Dict[str, Any]]:
    """Headline: compile overhead + opt0-vs-opt2 quality speedups."""
    text = _read("e23_planner.json")
    if text is None:
        return None
    document = json.loads(text)
    quality = {
        entry["workload"]: {
            "opt0_seconds": round(entry["opt0_seconds"], 4),
            "opt2_seconds": round(entry["opt2_seconds"], 4),
            "speedup": round(entry["speedup"], 3),
        }
        for entry in document.get("quality", [])
    }
    return {"headline": "staged planner compile overhead + "
                        "opt0-vs-opt2 quality",
            "smoke": document.get("smoke"),
            "worst_mean_compile_seconds": round(
                document.get("worst_mean_compile_seconds", 0.0), 6),
            "best_speedup": round(
                document.get("best_speedup", 0.0), 3),
            "quality": quality,
            "statuses": _statuses("e23_planner")}


def collect_e24() -> Optional[Dict[str, Any]]:
    """Headline: chaos-survival cells + zero-fault overhead."""
    text = _read("e24_resilience.json")
    if text is None:
        return None
    document = json.loads(text)
    workloads = {
        entry["workload"]: {
            "baseline_seconds": round(entry["baseline_seconds"], 4),
            "zero_fault_overhead": round(
                entry.get("zero_fault_overhead", 0.0), 4),
            "cells": [{"probability": cell["probability"],
                       "completed": cell["completed"],
                       "runs": cell["runs"],
                       "retries": cell["retries"],
                       "demotions": cell["demotions"],
                       "seconds": round(cell["seconds"], 4),
                       "status": cell["status"]}
                      for cell in entry["cells"]],
        }
        for entry in document.get("workloads", [])
    }
    return {"headline": "fault-tolerant parallel execution under "
                        "worker-crash chaos, thread backend",
            "smoke": document.get("smoke"),
            "cpu_count": document.get("cpu_count"),
            "workers": document.get("workers"),
            "repeats": document.get("repeats"),
            "workloads": workloads,
            "statuses": _statuses("e24_resilience")}


def collect_e25() -> Optional[Dict[str, Any]]:
    """Headline: storage round-trip throughput + what statistics buy."""
    text = _read("e25_storage.json")
    if text is None:
        return None
    document = json.loads(text)
    load = [{"rows": entry["rows"],
             "save_rows_per_sec": round(entry["save_rows_per_sec"], 1),
             "load_rows_per_sec": round(entry["load_rows_per_sec"], 1),
             "analyze_seconds": round(entry["analyze_seconds"], 4)}
            for entry in document.get("load", [])]
    compile_cell = document.get("compile") or {}
    qerror = [{"scale": entry["scale"],
               "catalog_q_error": round(entry["catalog_q_error"], 4),
               "flat_q_error": round(entry["flat_q_error"], 4)}
              for entry in document.get("qerror", [])]
    return {"headline": "persistent workspaces + statistics catalog: "
                        "load throughput, zero-scan compiles, "
                        "data-driven plan quality",
            "smoke": document.get("smoke"),
            "load": load,
            "compile": {
                "catalog_mean_seconds": round(
                    compile_cell.get("catalog_mean_seconds", 0.0), 6),
                "cold_scan_mean_seconds": round(
                    compile_cell.get("cold_scan_mean_seconds", 0.0),
                    6),
                "catalog_scans": compile_cell.get("catalog_scans"),
                "cold_scans": compile_cell.get("cold_scans"),
            },
            "quality_speedup": round(
                document.get("quality_speedup", 0.0), 3),
            "worst_catalog_q_error": round(
                document.get("worst_catalog_q_error", 0.0), 4),
            "qerror": qerror,
            "statuses": _statuses("e25_storage")}


def collect_e26() -> Optional[Dict[str, Any]]:
    """Headline: gated geomean of the fused-pipeline speedups."""
    text = _read("e26_columnar.json")
    if text is None:
        return None
    document = json.loads(text)
    cells = {entry["cell"]: {
        "physical_seconds": round(entry["physical_seconds"], 4),
        "codegen_seconds": round(entry["codegen_seconds"], 4),
        "speedup": round(entry["speedup"], 3)}
        for entry in document.get("headline", [])}
    satellite = {entry["cell"]: round(entry["speedup"], 3)
                 for entry in document.get("satellite", [])}
    return {"headline": "codegen engine vs stream engine, "
                        "fused-pipeline geomean",
            "smoke": document.get("smoke"),
            "geomean": round(document.get("geomean", 0.0), 3),
            "geomean_floor": document.get("geomean_floor"),
            "cells": cells,
            "satellite": satellite,
            "fused_segments": document.get("fused_segments"),
            "statuses": _statuses("e26_columnar")}


def collect_e27() -> Optional[Dict[str, Any]]:
    """Headline: the N fast-path overhead pin and the generic-domain
    cost/size cells."""
    text = _read("e27_semiring.json")
    if text is None:
        return None
    document = json.loads(text)
    fast_path = document.get("fast_path", {})
    return {"headline": "semiring core: N fast-path overhead pin",
            "smoke": document.get("smoke"),
            "overhead": fast_path.get("overhead"),
            "overhead_ceiling": document.get("overhead_ceiling"),
            "structural_pin": document.get("structural_pin"),
            "bool_vs_nat": document.get("bool_vs_nat"),
            "provenance": document.get("provenance"),
            "statuses": _statuses("e27_semiring")}


def build_ledger() -> Dict[str, Any]:
    return {
        "comment": ("per-PR perf trajectory; regenerate with "
                    "PYTHONPATH=src python benchmarks/collect.py"),
        "experiments": {
            "e20_engine": collect_e20(),
            "e21_testkit": collect_e21(),
            "e22_parallel": collect_e22(),
            "e23_planner": collect_e23(),
            "e24_resilience": collect_e24(),
            "e25_storage": collect_e25(),
            "e26_columnar": collect_e26(),
            "e27_semiring": collect_e27(),
        },
    }


def main(argv) -> int:
    ledger = build_ledger()
    rendered = json.dumps(ledger, indent=2, sort_keys=True) + "\n"
    if "--check" in argv:
        current = _read("BENCH_TRAJECTORY.json")
        if current != rendered:
            sys.stderr.write(
                "BENCH_TRAJECTORY.json is stale; regenerate with "
                "PYTHONPATH=src python benchmarks/collect.py\n")
            return 1
        print("BENCH_TRAJECTORY.json is fresh")
        return 0
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(LEDGER, "w", encoding="utf-8") as handle:
        handle.write(rendered)
    print(f"wrote {LEDGER}")
    for name, entry in sorted(ledger["experiments"].items()):
        status = "missing" if entry is None else entry["headline"]
        print(f"  {name}: {status}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
