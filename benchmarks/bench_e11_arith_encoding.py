"""E11 — Lemma 5.7 / Theorem 5.5: arithmetic compiled into the algebra.

The benchmark compiles bounded arithmetic sentences to BALG^2(+Pb)
expressions and checks the algebra agrees with direct evaluation on
every input; then it measures the doubling expression E (the
powerbag-powered engine of the hyperexponential lower bound) and the
domain sizes it generates per hyper level.
"""

from __future__ import annotations

from benchmarks.conftest import emit_table
from repro.arith import (
    NAnd, NConst, NEq, NExists, NLe, NNot, NVar, Plus, Times,
    compile_formula, domain_bound, domain_expr, doubling_expr,
    eval_formula, input_bag,
)
from repro.arith.translate import _normalize
from repro.core.derived import is_nonempty
from repro.core.eval import evaluate
from repro.core.expr import var


def test_e11_sentence_agreement(benchmark):
    n, x, y = NVar("n"), NVar("x"), NVar("y")
    sentences = {
        "n even": NExists("x", NEq(Plus(x, x), n)),
        "n square": NExists("x", NEq(Times(x, x), n)),
        "n composite": NExists("x", NExists("y", NAnd(
            NEq(Times(x, y), n),
            NAnd(NNot(NLe(x, NConst(1))), NNot(NLe(y, NConst(1))))))),
        "n >= 3": NNot(NLe(n, NConst(2))),
    }
    rows = []
    for name, sentence in sentences.items():
        compiled = compile_formula(sentence)
        verdicts = []
        for value in range(6):
            algebra = is_nonempty(evaluate(compiled.expr,
                                           B=input_bag(value)))
            direct = eval_formula(sentence, domain_bound(value, 0),
                                  {"n": value})
            assert algebra == direct, (name, value)
            verdicts.append("T" if algebra else "F")
        rows.append((name, compiled.expr.size(), " ".join(verdicts)))
    emit_table(
        "e11_sentences",
        "E11a  Lemma 5.7: compiled sentences agree with direct "
        "bounded-arithmetic evaluation (n = 0..5)",
        ["sentence", "AST nodes", "verdicts 0..5"], rows)

    compiled = compile_formula(sentences["n even"])
    bag = input_bag(4)
    benchmark(lambda: evaluate(compiled.expr, B=bag))


def test_e11_doubling_and_domains(benchmark):
    rows = []
    for n in (1, 2, 3, 4):
        doubled = evaluate(doubling_expr(_normalize(var("B"))),
                           B=input_bag(n))
        assert doubled.cardinality == 2 ** n
        rows.append((n, doubled.cardinality, 2 ** n))
    emit_table(
        "e11_doubling",
        "E11b  E(b_n) via the powerbag: 2^n marker copies "
        "(the Theorem 5.5 doubling step)",
        ["n", "measured |E(b_n)|", "2^n"], rows)

    # domain sizes by hyper level (the bag of integers 0..hyper(i)(n))
    rows = []
    for level in (0, 1):
        for n in (2, 3):
            domain = evaluate(domain_expr("B", level), B=input_bag(n))
            expected = domain_bound(n, level) + 1
            assert domain.distinct_count == expected
            rows.append((level, n, domain.distinct_count, expected))
    emit_table(
        "e11_domains",
        "E11c  quantifier domains D(b_n) = P(E^i(b_n)): "
        "hyper(i)(n) + 1 integers",
        ["hyper level", "n", "measured", "expected"], rows)

    benchmark(lambda: evaluate(domain_expr("B", 1), B=input_bag(3)))
