"""E08 — Theorem 5.1: BALG^2 is in PSPACE.

The proof bounds every intermediate multiplicity of a BALG^2 query by
2^{poly(n)}, so counters fit in polynomially many bits.  The benchmark
runs a P-using query battery over growing inputs and confirms (i) the
single-exponential envelope — log2(multiplicity) grows polynomially —
and (ii) the proof's finer point that a powerset followed by
bag-destroy yields only *polynomial* growth on duplicate-heavy inputs
(it is consecutive powersets that exponentiate, which BALG^2's typing
forbids).
"""

from __future__ import annotations

from benchmarks.conftest import emit_table
from repro.complexity import fit_exponent_of_two, profile_sweep
from repro.core.bag import Bag, Tup
from repro.core.expr import BagDestroy, Dedup, Powerset, var

SIZES = [2, 4, 6, 8, 10]


def test_e08_exponential_envelope(benchmark):
    """delta(P(R)) over a *sparse* relation (n distinct tuples): the
    multiplicities reach ~2^(n-1) — exponential but single-exponential,
    matching the claim's 2^{P(n)} envelope."""
    def database(n):
        return {"R": Bag([Tup(str(i)) for i in range(n)])}

    rows_profile = profile_sweep(
        lambda n: BagDestroy(Powerset(var("R"))), database, SIZES)
    slope = fit_exponent_of_two(rows_profile)
    rows = [(row.input_size, f"{row.peak_multiplicity:,}",
             row.counter_bits) for row in rows_profile]
    emit_table(
        "e08_envelope",
        "E08a  delta(P(R)), sparse R: single-exponential "
        "multiplicities (counter bits grow linearly => PSPACE)",
        ["input size", "peak multiplicity", "counter bits"], rows)
    assert 0.1 < slope < 1.5  # exponent linear in n, constant < 1.5

    database8 = database(8)
    from repro.core.eval import Evaluator
    benchmark(lambda: Evaluator().run(
        BagDestroy(Powerset(var("R"))), database8))


def test_e08_duplicates_only_polynomial(benchmark):
    """The proof's asymmetry: on duplicate-heavy inputs (one tuple, n
    copies) delta(P(.)) gives only n(n+1)/2 — polynomial — because the
    powerset of duplicates is small (n+1 subbags)."""
    def database(n):
        return {"R": Bag.from_counts({Tup("a"): n})}

    rows_profile = profile_sweep(
        lambda n: BagDestroy(Powerset(var("R"))), database,
        [4, 8, 16, 32])
    rows = []
    for row, n in zip(rows_profile, [4, 8, 16, 32]):
        predicted = n * (n + 1) // 2
        assert row.peak_multiplicity == predicted
        rows.append((n, f"{row.peak_multiplicity:,}",
                     f"{predicted:,}", "exact"))
    emit_table(
        "e08_poly",
        "E08b  delta(P(R)), duplicate-heavy R: polynomial n(n+1)/2 — "
        "the Theorem 5.1 mechanism",
        ["n copies", "measured", "n(n+1)/2", "match"], rows)

    database16 = database(16)
    from repro.core.eval import Evaluator
    benchmark(lambda: Evaluator().run(
        BagDestroy(Powerset(var("R"))), database16))


def test_e08_dedup_via_powerset_cost(benchmark):
    """Proposition 3.1's derived eps runs inside the same envelope."""
    from repro.core.derived import derived_dedup
    from repro.core.types import flat_tuple_type
    from repro.core.eval import Evaluator
    from repro.core.ops import dedup

    expr = derived_dedup(var("R"), flat_tuple_type(1))
    rows = []
    for n in (2, 4, 6):
        bag = Bag.from_counts({Tup(str(i)): 2 for i in range(n)})
        evaluator = Evaluator()
        result = evaluator.run(expr, R=bag)
        assert result == dedup(bag)
        rows.append((n, evaluator.stats.peak_encoding_size,
                     evaluator.stats.peak_multiplicity))
    emit_table(
        "e08_dedup_cost",
        "E08c  derived eps (Prop 3.1): intermediate sizes of the "
        "powerset detour",
        ["distinct tuples", "peak encoding", "peak multiplicity"],
        rows)

    bag = Bag.from_counts({Tup(str(i)): 2 for i in range(5)})
    benchmark(lambda: Evaluator().run(expr, R=bag))
