"""Shared reporting helpers for the experiment benchmarks.

Every benchmark regenerates one table/figure-equivalent of the paper
(see DESIGN.md's experiment index).  Besides the pytest-benchmark
timing, each experiment *prints* its rows and persists them under
``benchmarks/results/`` so the paper-vs-measured comparison of
EXPERIMENTS.md can be re-derived at any time.

Long experiment cells run *governed*: :func:`governed_cell` wraps one
cell in a fresh :class:`~repro.guard.ResourceGovernor` per attempt and
the :mod:`repro.guard.retry` runner, so a cell that exhausts its
budget degrades into a recorded ``budget-exceeded`` data point instead
of aborting the whole battery.  Per-experiment statuses are persisted
as ``benchmarks/results/<experiment>.status.json`` — deterministic,
sorted, timestamp-free — so reruns are diffable.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import pytest

from repro.guard import (
    Limits, ResourceGovernor, RetryPolicy, RunOutcome, run_with_retry,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: experiment name -> list of {"cell", "status", "attempts"} records,
#: accumulated across one pytest run.
_STATUS: Dict[str, List[Dict[str, object]]] = {}

#: experiment name -> top-level metadata merged into the status file
#: (hardware context, gate verdicts — anything a reader needs to tell
#: a skipped acceptance gate from a failed one).
_META: Dict[str, Dict[str, object]] = {}


def emit_table(name: str, title: str, headers: Sequence[str],
               rows: Iterable[Sequence]) -> str:
    """Format an experiment table, print it, and persist it."""
    rows = [list(map(str, row)) for row in rows]
    widths = [max(len(str(header)), *(len(row[i]) for row in rows))
              if rows else len(str(header))
              for i, header in enumerate(headers)]
    lines = [title]
    lines.append("  ".join(str(header).ljust(width)
                           for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
    text = "\n".join(lines)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w",
              encoding="utf-8") as handle:
        handle.write(text + "\n")
    print("\n" + text)
    return text


def _write_status(experiment: str) -> None:
    document: Dict[str, object] = {"experiment": experiment}
    document.update(_META.get(experiment, {}))
    document["cells"] = _STATUS.get(experiment, [])
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment}.status.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def record_cell_status(experiment: str, cell: str,
                       outcome: RunOutcome) -> None:
    """Record one cell's outcome and rewrite the experiment's status
    file (sorted by cell label, no timestamps → diffable reruns)."""
    cells = _STATUS.setdefault(experiment, [])
    cells[:] = [entry for entry in cells if entry["cell"] != cell]
    cells.append({"cell": cell, "status": outcome.status,
                  "attempts": outcome.attempts})
    cells.sort(key=lambda entry: str(entry["cell"]))
    _write_status(experiment)


def record_experiment_meta(experiment: str, **meta: object) -> None:
    """Merge top-level metadata into an experiment's status file.

    E22 records the CPU count, smoke/full mode, and its acceptance
    gates here, so a reader of ``<e>.status.json`` can distinguish a
    *skipped* hardware-bound gate (too few cores, smoke tier) from a
    *failed* one without re-deriving the gating rule.
    """
    _META.setdefault(experiment, {}).update(meta)
    _write_status(experiment)


def governed_cell(experiment: str, cell: str,
                  fn: Callable[[Optional[ResourceGovernor]], object],
                  limits: Optional[Limits] = None,
                  policy: Optional[RetryPolicy] = None,
                  faults=None,
                  sleep: Callable[[float], None] = time.sleep,
                  classify: Optional[Callable[[object],
                                              Optional[str]]] = None
                  ) -> RunOutcome:
    """Run one experiment cell under a fresh governor per attempt.

    ``fn(governor)`` does the cell's work; the returned
    :class:`~repro.guard.RunOutcome` is also recorded in the
    experiment's status file.  Governed failures never propagate —
    the battery keeps running and the status records what happened.
    Worker-loss failures (crashed process workers, broken pools)
    persist as ``worker-lost``.  ``classify(value)`` inspects a
    *successful* cell's result and may return ``"degraded"`` to
    relabel it — e.g. when the resilience ladder demoted a parallel
    run to serial but still produced the value.
    """

    def attempt(number: int) -> object:
        governor = None
        if limits is not None or faults is not None:
            governor = ResourceGovernor(limits, faults=faults)
        return fn(governor)

    outcome = run_with_retry(attempt, policy, sleep=sleep)
    if classify is not None and outcome.ok:
        if classify(outcome.value) == "degraded":
            outcome.mark_degraded()
    record_cell_status(experiment, cell, outcome)
    return outcome
