"""Shared reporting helpers for the experiment benchmarks.

Every benchmark regenerates one table/figure-equivalent of the paper
(see DESIGN.md's experiment index).  Besides the pytest-benchmark
timing, each experiment *prints* its rows and persists them under
``benchmarks/results/`` so the paper-vs-measured comparison of
EXPERIMENTS.md can be re-derived at any time.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_table(name: str, title: str, headers: Sequence[str],
               rows: Iterable[Sequence]) -> str:
    """Format an experiment table, print it, and persist it."""
    rows = [list(map(str, row)) for row in rows]
    widths = [max(len(str(header)), *(len(row[i]) for row in rows))
              if rows else len(str(header))
              for i, header in enumerate(headers)]
    lines = [title]
    lines.append("  ".join(str(header).ljust(width)
                           for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
    text = "\n".join(lines)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w",
              encoding="utf-8") as handle:
        handle.write(text + "\n")
    print("\n" + text)
    return text
