"""E06 — Theorem 4.4: BALG^1 is in LOGSPACE.

The proof's invariant: during the evaluation of a BALG^1 query, the
multiplicity of every tuple in every intermediate bag is polynomial in
the input size, so its counter needs O(log n) bits.  The benchmark
sweeps input sizes over a BALG^1 query battery, records the peak
multiplicity and its bit length, and fits the polynomial degree — the
log-log slope must stay bounded (and the counter bits logarithmic).
"""

from __future__ import annotations

import math

from benchmarks.conftest import emit_table
from repro.complexity import fit_power_law, profile_sweep
from repro.core.bag import Bag, Tup
from repro.core.derived import (
    card_greater_expr, hartig_expr, parity_even_expr, project_expr,
)
from repro.core.expr import Cartesian, var

SIZES = [4, 8, 16, 32]


def _database(n: int):
    return {"R": Bag([Tup(i) for i in range(n)]),
            "S": Bag([Tup(-i - 1) for i in range(max(1, n // 2))])}


QUERIES = {
    "card(R) > card(S)": lambda n: card_greater_expr(var("R"),
                                                     var("S")),
    "Hartig(R, S)": lambda n: hartig_expr(var("R"), var("S")),
    "parity(R)": lambda n: parity_even_expr(var("R")),
    "pi1(R x R x S)": lambda n: project_expr(
        Cartesian(Cartesian(var("R"), var("R")), var("S")), 1),
}


def test_e06_polynomial_multiplicities(benchmark):
    rows = []
    for name, make_query in QUERIES.items():
        profile = profile_sweep(make_query, _database, SIZES)
        slope = fit_power_law(profile)
        biggest = profile[-1]
        counter_vs_log = biggest.counter_bits / max(
            1.0, math.log2(biggest.input_size))
        # Theorem 4.4's invariant: polynomial growth, low degree
        assert slope < 4.0, name
        rows.append((name, f"{slope:.2f}",
                     f"{biggest.peak_multiplicity:,}",
                     biggest.counter_bits,
                     f"{counter_vs_log:.1f} x log2(n)"))
    emit_table(
        "e06_logspace",
        "E06  Theorem 4.4: peak multiplicities of BALG^1 queries are "
        "polynomial (counters fit in O(log n) bits)",
        ["query", "log-log slope", "peak mult @ n=32",
         "counter bits", "bits vs log"], rows)

    database = _database(16)
    query = card_greater_expr(var("R"), var("S"))
    from repro.core.eval import Evaluator
    benchmark(lambda: Evaluator().run(query, database))
