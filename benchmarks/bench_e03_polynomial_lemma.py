"""E03 — Propositions 4.1 / 4.5: the counting-lemma inexpressibility
experiment.

For a family of BALG^1 expressions we (i) compute the exact counting
polynomial P_[a](n) of the claim, (ii) validate it against the
evaluator beyond the threshold, and (iii) produce concrete witnesses
showing no candidate computes duplicate elimination or bag-even — the
machine-checked content of both propositions.
"""

from __future__ import annotations

from benchmarks.conftest import emit_table
from repro.complexity import (
    analyze, refute_bag_even, refute_dedup, single_constant_input,
)
from repro.core.bag import Bag, Tup
from repro.core.derived import (
    bag_even_native, project_expr, select_attr_eq_attr,
)
from repro.core.eval import evaluate
from repro.core.expr import Cartesian, Const, Dedup, var
from repro.core.ops import dedup


def _candidates():
    B = var("B")
    marker = Const(Bag.of(Tup("b")))
    return {
        "B": B,
        "B (+) B": B + B,
        "(B (+) B) - B": (B + B) - B,
        "B - const": B - Const(Bag.from_counts({Tup("b"): 2})),
        "B n const": B & marker,
        "B u const": B | marker,
        "pi1(B x B)": project_expr(Cartesian(B, B), 1),
        "pi1(sigma11(BxB))": project_expr(
            select_attr_eq_attr(Cartesian(B, B), 1, 2), 1),
        "eps(B (+) B)": Dedup(B + B),
    }


def test_e03_polynomials_validated(benchmark):
    rows = []
    for name, expr in _candidates().items():
        analysis = analyze(expr)
        poly = analysis.polynomial_for(Tup("a"))
        # validate beyond the threshold
        for offset in (1, 2, 3):
            n = analysis.threshold + offset
            actual = evaluate(expr, B=single_constant_input(n))
            assert actual.multiplicity(Tup("a")) == poly(n)
        rows.append((name, repr(poly), analysis.threshold))
    emit_table(
        "e03_polynomials",
        "E03a  counting polynomials P_[a](n) per candidate "
        "(validated against the interpreter)",
        ["expression", "P_[a](n)", "threshold N"], rows)

    expr = _candidates()["pi1(sigma11(BxB))"]
    benchmark(lambda: analyze(expr))


def test_e03_dedup_refutations(benchmark):
    rows = []
    for name, expr in _candidates().items():
        if any(isinstance(node, Dedup) for node in expr.walk()):
            continue  # Prop 4.1 is about the eps-free fragment
        witness = refute_dedup(expr)
        if witness is None:
            verdict = "indistinguishable on B_n"
        else:
            bag = single_constant_input(witness)
            assert evaluate(expr, B=bag) != dedup(bag)
            verdict = f"differs from eps at n={witness}"
        rows.append((name, verdict))
    emit_table(
        "e03_dedup",
        "E03b  Prop 4.1: no eps-free BALG^1 candidate computes "
        "duplicate elimination",
        ["expression", "verdict"], rows)

    expr = _candidates()["(B (+) B) - B"]
    benchmark(lambda: refute_dedup(expr))


def test_e03_bag_even_refutations(benchmark):
    rows = []
    for name, expr in _candidates().items():
        witness = refute_bag_even(expr)
        bag = single_constant_input(witness)
        assert evaluate(expr, B=bag) != bag_even_native(bag)
        rows.append((name, f"differs from bag-even at n={witness}"))
    emit_table(
        "e03_bag_even",
        "E03c  Prop 4.5: no BALG^1 candidate (eps allowed) computes "
        "bag-even",
        ["expression", "verdict"], rows)

    expr = _candidates()["eps(B (+) B)"]
    benchmark(lambda: refute_bag_even(expr))
