"""E09 — Figure 1 + Theorem 5.2 / Lemma 5.4: the RALG^2 < BALG^2
separation.

For each n we (i) build the In_n/Out_n families and check the
probabilistic property (1), (ii) verify the BALG^2 in-degree query
separates G from G', and (iii) solve the GV90 game exactly: the
duplicator wins with k moves (so no k-variable CALC1 = RALG^2 sentence
separates the graphs).  Together these are the two halves of the
theorem, at the finite sizes the construction prescribes (n > 2k).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_table
from repro.core.derived import in_degree_greater_expr, is_nonempty
from repro.core.eval import evaluate
from repro.core.expr import var
from repro.core.types import U
from repro.games import (
    SET_OF_ATOMS, build_star_graphs, duplicator_wins, edge_bag,
    in_out_families, satisfies_property_one,
)


def test_e09_property_one(benchmark):
    rows = []
    for n in (4, 6, 8, 10, 12):
        ins, outs = in_out_families(n)
        ok = (satisfies_property_one(ins, n)
              and satisfies_property_one(outs, n))
        assert ok
        rows.append((n, len(ins), len(outs), n // 2, ok))
    emit_table(
        "e09_families",
        "E09a  In_n / Out_n families: property (1) — every atom in "
        "half the sets",
        ["n", "|In|", "|Out|", "set size", "property (1)"], rows)

    benchmark(lambda: in_out_families(12))


def test_e09_balg2_separates(benchmark):
    rows = []
    for n in (4, 6, 8):
        pair = build_star_graphs(n)
        query = in_degree_greater_expr(var("G"), pair.center)
        on_g = is_nonempty(evaluate(query, G=edge_bag(pair.balanced)))
        on_gp = is_nonempty(evaluate(query,
                                     G=edge_bag(pair.unbalanced)))
        assert (on_g, on_gp) == (False, True)
        rows.append((n, on_g, on_gp, "separated"))
    emit_table(
        "e09_balg2",
        "E09b  the BALG^2 query 'in-degree(alpha) > out-degree' on "
        "(G, G')",
        ["n", "holds on G", "holds on G'", "status"], rows)

    pair = build_star_graphs(8)
    query = in_degree_greater_expr(var("G"), pair.center)
    bag = edge_bag(pair.unbalanced)
    benchmark(lambda: evaluate(query, G=bag))


def test_e09_duplicator_wins_one_move(benchmark):
    rows = []
    for n in (4, 6, 8):
        pair = build_star_graphs(n)
        game = duplicator_wins(pair.balanced, pair.unbalanced,
                               [U, SET_OF_ATOMS], 1)
        assert game.duplicator_wins
        rows.append((n, 1, game.duplicator_wins,
                     game.positions_explored))
    emit_table(
        "e09_game_k1",
        "E09c  GV90 game, k=1: duplicator wins on every (G, G') pair "
        "(no 1-variable RALG^2 separation)",
        ["n", "k", "duplicator wins", "positions"], rows)

    pair = build_star_graphs(6)
    benchmark(lambda: duplicator_wins(pair.balanced, pair.unbalanced,
                                      [U, SET_OF_ATOMS], 1))


@pytest.mark.slow
def test_e09_duplicator_wins_two_moves(benchmark):
    rows = []
    for n in (4, 6):
        pair = build_star_graphs(n)
        game = duplicator_wins(pair.balanced, pair.unbalanced,
                               [U, SET_OF_ATOMS], 2)
        assert game.duplicator_wins
        rows.append((n, 2, game.duplicator_wins,
                     game.positions_explored))
    emit_table(
        "e09_game_k2",
        "E09d  GV90 game, k=2: duplicator still wins "
        "(exact minimax search)",
        ["n", "k", "duplicator wins", "positions"], rows)

    pair = build_star_graphs(4)
    benchmark(lambda: duplicator_wins(pair.balanced, pair.unbalanced,
                                      [U, SET_OF_ATOMS], 2))
