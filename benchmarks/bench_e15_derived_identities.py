"""E15 — Proposition 3.1 and the Section 3 operator identities.

Every derived form must coincide with its primitive on random inputs,
and the nesting increase the paper points out (derived eps and minus
climb to BALG^2) is measured statically.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit_table
from repro.core import ops
from repro.core.bag import Bag, Tup
from repro.core.derived import (
    derived_additive_union, derived_dedup, derived_subtraction,
)
from repro.core.eval import evaluate
from repro.core.expr import var
from repro.core.fragments import max_bag_nesting
from repro.core.types import BagType, U, flat_bag_type, flat_tuple_type


def _random_flat(rng: random.Random, size: int) -> Bag:
    return Bag([Tup(rng.choice("abc"), rng.choice("xy"))
                for _ in range(size)])


def _random_nested(rng: random.Random, size: int) -> Bag:
    return Bag([Bag([rng.choice("ab") for _ in
                     range(rng.randrange(3))])
                for _ in range(size)])


def test_e15_identities_hold(benchmark):
    rng = random.Random(150)
    trials = 25
    checks = {
        "eps via P (flat tuples)": 0,
        "eps via P (nested bags)": 0,
        "minus via P": 0,
        "(+) via u and tags": 0,
    }
    for _ in range(trials):
        flat = _random_flat(rng, rng.randrange(8))
        other = _random_flat(rng, rng.randrange(8))
        nested = _random_nested(rng, rng.randrange(5))

        assert evaluate(derived_dedup(var("B"), flat_tuple_type(2)),
                        B=flat) == ops.dedup(flat)
        checks["eps via P (flat tuples)"] += 1

        assert evaluate(derived_dedup(var("B"), BagType(U)),
                        B=nested) == ops.dedup(nested)
        checks["eps via P (nested bags)"] += 1

        assert evaluate(derived_subtraction(var("L"), var("R")),
                        L=flat, R=other) == ops.subtraction(flat, other)
        checks["minus via P"] += 1

        assert evaluate(derived_additive_union(var("L"), var("R"), 2),
                        L=flat, R=other) == ops.additive_union(flat,
                                                               other)
        checks["(+) via u and tags"] += 1

    emit_table(
        "e15_identities",
        f"E15a  derived-operator identities on {trials} random inputs",
        ["identity", "random inputs verified"],
        list(checks.items()))

    flat = _random_flat(rng, 6)
    other = _random_flat(rng, 4)
    benchmark(lambda: evaluate(
        derived_subtraction(var("L"), var("R")), L=flat, R=other))


def test_e15_nesting_increase(benchmark):
    """Section 4 shows the nesting increase is *essential*: the derived
    eps and minus use intermediate types one level above their I/O."""
    rows = [
        ("eps via P on {{U^2}}",
         max_bag_nesting(derived_dedup(var("B"), flat_tuple_type(2)),
                         B=flat_bag_type(2)), 1),
        ("minus via P on {{U^2}}",
         max_bag_nesting(derived_subtraction(var("L"), var("R")),
                         L=flat_bag_type(2), R=flat_bag_type(2)), 1),
        ("(+) via u on {{U^2}}",
         max_bag_nesting(
             derived_additive_union(var("L"), var("R"), 2),
             L=flat_bag_type(2), R=flat_bag_type(2)), 1),
    ]
    table = [(name, nesting, io) for name, nesting, io in rows]
    emit_table(
        "e15_nesting",
        "E15b  intermediate bag nesting of the derived forms "
        "(eps and minus must leave BALG^1; the tagging identity "
        "stays flat)",
        ["derived form", "intermediate nesting", "I/O nesting"], table)
    assert rows[0][1] == 2   # eps detours through nesting 2
    assert rows[1][1] == 2   # minus likewise
    assert rows[2][1] == 1   # additive union stays flat

    benchmark(lambda: max_bag_nesting(
        derived_dedup(var("B"), flat_tuple_type(2)),
        B=flat_bag_type(2)))
