"""E19 — governed-evaluation smoke battery (robustness, not a paper
claim).

Exercises the resource-governor spine end to end under benchmark
conditions: a healthy governed cell, a genuine powerset blow-up, a
demonstrably diverging IFP, and a transient injected fault that the
retry runner recovers from.  Every cell is recorded in
``results/e19_governed.status.json`` (ok / budget-exceeded / retried),
demonstrating that one hostile cell cannot abort the battery — the CI
workflow runs this file on every push.
"""

from __future__ import annotations

from benchmarks.conftest import emit_table, governed_cell
from repro.core.bag import Bag, Tup
from repro.core.eval import Evaluator
from repro.core.expr import Const, Powerset, Var
from repro.guard import FaultPlan, Limits, ResourceGovernor, RetryPolicy
from repro.machines.ifp import Ifp
from repro.workloads import uniform_family

EXPERIMENT = "e19_governed"


def test_e19_governed_battery(benchmark):
    rows = []

    # 1. a healthy cell: powerset within every budget
    def healthy(governor):
        evaluator = Evaluator(governor=governor)
        result = evaluator.run(Powerset(Var("B")), B=uniform_family(3, 2))
        return result.cardinality
    outcome = governed_cell(
        EXPERIMENT, "powerset-within-budget", healthy,
        limits=Limits(max_steps=10_000, powerset_budget=1 << 16))
    assert outcome.status == "ok" and outcome.value == 27
    rows.append(("powerset-within-budget", outcome.status,
                 outcome.attempts))

    # 2. a genuine Prop 3.2 blow-up: |P(B)| = 3^20, budget 2^16
    def blow_up(governor):
        evaluator = Evaluator(governor=governor)
        return evaluator.run(Powerset(Var("B")), B=uniform_family(20, 2))
    outcome = governed_cell(
        EXPERIMENT, "powerset-blow-up", blow_up,
        limits=Limits(powerset_budget=1 << 16))
    assert outcome.status == "budget-exceeded"
    assert outcome.stats is not None  # partial measurements survive
    rows.append(("powerset-blow-up", outcome.status, outcome.attempts))

    # 3. a demonstrably diverging fixpoint (multiplicities grow forever)
    def diverging(governor):
        body = Var("X") + Var("X")
        fixpoint = Ifp("X", body, Const(Bag.of(Tup("a"))))
        return Evaluator(governor=governor).run(fixpoint)
    outcome = governed_cell(
        EXPERIMENT, "ifp-divergence", diverging,
        limits=Limits(max_iterations=25))
    assert outcome.status == "budget-exceeded"
    assert outcome.error.iterations == 25
    rows.append(("ifp-divergence", outcome.status, outcome.attempts))

    # 4. a transient injected deadline fault: fails twice, then clears
    fault = FaultPlan(at_step=2, kind="deadline", max_firings=2)

    def flaky(governor):
        evaluator = Evaluator(governor=governor)
        return evaluator.run(Var("B") + Var("B"), B=uniform_family(2, 2))
    outcome = governed_cell(
        EXPERIMENT, "transient-fault-retried", flaky,
        limits=Limits(max_steps=1000), faults=fault,
        policy=RetryPolicy(attempts=3, backoff=0.0),
        sleep=lambda _seconds: None)
    assert outcome.status == "retried" and outcome.attempts == 3
    rows.append(("transient-fault-retried", outcome.status,
                 outcome.attempts))

    emit_table(
        EXPERIMENT, "E19  governed evaluation smoke battery",
        ["cell", "status", "attempts"], rows)

    governed = ResourceGovernor(Limits(max_steps=10_000))
    bag = uniform_family(3, 2)
    benchmark(lambda: Evaluator(
        governor=governed.start()).run(Powerset(Var("B")), B=bag))
