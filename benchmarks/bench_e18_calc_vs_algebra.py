"""E18 — Theorem 5.3 operationally: CALC1 vs its algebra compilation.

The theorem chains RALG^2 = CALC1 = game equivalence.  This experiment
exercises the first link end-to-end: a battery of CALC1 sentences is
evaluated directly (active-domain semantics) and through the
calculus-to-algebra compiler, on the Figure 1 graphs and controls —
verdicts must match everywhere, and the compiled sentences must not
separate G from G' when the game says they cannot.
"""

from __future__ import annotations

from benchmarks.conftest import emit_table
from repro.core.derived import is_nonempty
from repro.core.eval import evaluate
from repro.core.types import U
from repro.games import SET_OF_ATOMS, build_star_graphs
from repro.games.structures import CoStructure, set_of
from repro.relational.calc import (
    Contained, Exists, Forall, Implies, Member, Not, Or, Rel, TermVar,
    satisfies,
)
from repro.relational.calc2alg import compile_calc, structure_to_database

NODE = SET_OF_ATOMS
SCHEMA = {"E": (NODE, NODE)}


def _sentences():
    x, y = TermVar("x"), TermVar("y")
    return {
        "some edge": Exists("x", NODE, Exists(
            "y", NODE, Rel("E", [x, y]))),
        "a self loop": Exists("x", NODE, Rel("E", [x, x])),
        "reflexive containment": Forall(
            "x", NODE, Contained(x, x)),
        "all atoms covered": Forall("a", U, Exists(
            "x", NODE, Member(TermVar("a"), x))),
        "symmetric edge exists": Exists("x", NODE, Exists(
            "y", NODE, Or(Rel("E", [x, y]), Rel("E", [y, x])))),
    }


def test_e18_agreement_battery(benchmark):
    triangle = CoStructure.build(
        {1, 2, 3}, {"E": {(set_of(1), set_of(2)),
                          (set_of(2), set_of(3)),
                          (set_of(3), set_of(1))}})
    pair = build_star_graphs(4)
    structures = {"triangle": triangle, "G_4": pair.balanced,
                  "G'_4": pair.unbalanced}

    rows = []
    for sentence_name, sentence in _sentences().items():
        compiled = compile_calc(sentence, SCHEMA)
        verdicts = []
        for structure_name, structure in structures.items():
            direct = satisfies(structure, sentence)
            algebraic = is_nonempty(evaluate(
                compiled, structure_to_database(structure),
                powerset_budget=1 << 16))
            assert direct == algebraic, (sentence_name, structure_name)
            verdicts.append(f"{structure_name}:"
                            f"{'T' if direct else 'F'}")
        rows.append((sentence_name, " ".join(verdicts), "agree"))
    emit_table(
        "e18_battery",
        "E18a  CALC1 sentences: direct semantics vs compiled algebra "
        "(every verdict identical)",
        ["sentence", "verdicts", "calc vs algebra"], rows)

    sentence = _sentences()["some edge"]
    compiled = compile_calc(sentence, SCHEMA)
    database = structure_to_database(triangle)
    benchmark(lambda: evaluate(compiled, database,
                               powerset_budget=1 << 16))


def test_e18_no_separation_on_the_pair(benchmark):
    """On (G, G') no sentence of the battery separates — the pair was
    engineered so cardinality information is invisible to RALG^2."""
    pair = build_star_graphs(4)
    g_database = structure_to_database(pair.balanced)
    gp_database = structure_to_database(pair.unbalanced)
    rows = []
    for name, sentence in _sentences().items():
        compiled = compile_calc(sentence, SCHEMA)
        on_g = is_nonempty(evaluate(compiled, g_database,
                                    powerset_budget=1 << 16))
        on_gp = is_nonempty(evaluate(compiled, gp_database,
                                     powerset_budget=1 << 16))
        assert on_g == on_gp
        rows.append((name, on_g, on_gp))
    emit_table(
        "e18_pair",
        "E18b  compiled CALC1 battery cannot separate G from G' — "
        "while the BALG^2 degree query does (E09)",
        ["sentence", "on G", "on G'"], rows)

    compiled = compile_calc(_sentences()["all atoms covered"], SCHEMA)
    benchmark(lambda: evaluate(compiled, g_database,
                               powerset_budget=1 << 16))
