"""E22 — morsel-driven parallel scaling (systems, not a paper claim).

Two workloads sweep the worker counts 1/2/4/8 on the ``process``
backend (the ``thread`` backend shares the GIL, so pure-Python kernels
cannot scale there — see docs/parallel.md):

* **dedup-heavy** — a symmetric-difference/dedup chain whose whole
  body compiles into one shard-local program, so each morsel runs the
  entire chain on its hash shard with zero cross-worker traffic;
* **join-heavy** — ``eps(sigma_{a2=a3}(L x R))``: both sides are
  hash-partitioned on the join key, each worker builds and probes its
  own shard-local table.

Every cell asserts **bag-equality against the serial physical
engine** before its timing is recorded — scaling numbers for wrong
answers are worthless.  A third battery drives the governed edges:
step budgets, near-zero deadlines, pre-cancelled tokens, and a
powerset budget blowing up inside a barrier leaf must surface the
*same* GovernedError types as the serial engine, with all workers
torn down.

Acceptance (the ISSUE's bar): >= 2x speedup at 4 workers on at least
one workload.  The assertion is gated on ``os.cpu_count() >= 4`` and
on ``E22_SMOKE`` being unset: a 1-2 core container (or the CI smoke
job) still runs every equality and governance check, but cannot
honestly fail a hardware-bound scaling target.

Results persist to ``results/e22_parallel.txt`` (human table),
``results/e22_parallel.json`` (machine-readable, consumed by
``benchmarks/collect.py``), and ``results/e22_parallel.status.json``
(governed-cell statuses).
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import (
    RESULTS_DIR, emit_table, governed_cell, record_cell_status,
)
from repro.core.bag import Bag, Tup
from repro.core.errors import (
    BudgetExceeded, Cancelled, DeadlineExceeded,
)
from repro.core.expr import (
    AdditiveUnion, Attribute, Cartesian, Dedup, Lam, Powerset, Select,
    Subtraction, Var, var,
)
from repro.engine import evaluate
from repro.guard import (
    CancellationToken, Limits, ResourceGovernor, RetryPolicy,
)

EXPERIMENT = "e22_parallel"

SMOKE = bool(os.environ.get("E22_SMOKE"))

WORKER_SWEEP = (1, 2, 4, 8)

SPEEDUP_FLOOR = 2.0        # at 4 workers, on at least one workload
SPEEDUP_WORKERS = 4

#: (atoms, copies) per workload — the smoke tier keeps CI fast while
#: still exercising every shard/merge/governance path.
DEDUP_SIZE = (400, 6) if SMOKE else (6000, 8)
JOIN_SIZE = 250 if SMOKE else 1400

LIMITS = Limits(max_steps=500_000_000, timeout=300.0)


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------


def _dedup_db():
    atoms, copies = DEDUP_SIZE
    X = Bag.from_counts({Tup(i % atoms, (i * 7) % atoms): (i % copies) + 1
                         for i in range(atoms * 2)})
    Y = Bag.from_counts({Tup(i % atoms, (i * 5) % atoms): (i % 3) + 1
                         for i in range(atoms)})
    return {"X": X, "Y": Y}


def dedup_chain(depth: int = 3):
    """eps((X - Y) (+) (Y - X)) iterated: one shard-local program."""
    x, y = var("X"), var("Y")
    for _ in range(depth):
        x = Dedup(AdditiveUnion(Subtraction(x, y), Subtraction(y, x)))
    return x


def _join_db():
    n = JOIN_SIZE
    L = Bag.from_counts({Tup(i % n, (i * 3) % 97): (i % 2) + 1
                         for i in range(n * 2)})
    R = Bag.from_counts({Tup((i * 3) % 97, i % n): (i % 3) + 1
                         for i in range(n * 2)})
    return {"L": L, "R": R}


def join_query():
    """eps(sigma_{a2=a3}(L x R)): hash-partitioned on the join key."""
    return Dedup(Select(Lam("t", Attribute(Var("t"), 2)),
                        Lam("t", Attribute(Var("t"), 3)),
                        Cartesian(var("L"), var("R"))))


WORKLOADS = [
    ("dedup-heavy", dedup_chain(), _dedup_db),
    ("join-heavy", join_query(), _join_db),
]


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


# ----------------------------------------------------------------------
# The experiment
# ----------------------------------------------------------------------


def test_e22_parallel_speedup(benchmark):
    rows = []
    ledger = {"experiment": EXPERIMENT, "smoke": SMOKE,
              "cpu_count": os.cpu_count(), "workloads": []}
    best_speedup_at_target = 0.0

    for label, expr, make_db in WORKLOADS:
        db = make_db()

        def serial_cell(governor, expr=expr, db=db):
            return _timed(lambda: evaluate(expr, db, cache=None,
                                           governor=governor))

        outcome = governed_cell(EXPERIMENT, f"{label}-serial",
                                serial_cell, limits=LIMITS)
        assert outcome.status == "ok", outcome.status
        reference, serial_seconds = outcome.value

        entry = {"workload": label, "serial_seconds": serial_seconds,
                 "cells": []}
        for workers in WORKER_SWEEP:

            def parallel_cell(governor, expr=expr, db=db,
                              workers=workers):
                return _timed(lambda: evaluate(
                    expr, db, cache=None, governor=governor,
                    engine="parallel", workers=workers,
                    parallel_backend="process",
                    parallel_threshold=0.0))

            outcome = governed_cell(EXPERIMENT, f"{label}-w{workers}",
                                    parallel_cell, limits=LIMITS)
            assert outcome.status == "ok", outcome.status
            result, seconds = outcome.value
            # bag-equality on EVERY cell, before any timing is kept
            assert result == reference, (label, workers)
            speedup = serial_seconds / seconds
            if workers == SPEEDUP_WORKERS:
                best_speedup_at_target = max(best_speedup_at_target,
                                             speedup)
            entry["cells"].append({"workers": workers,
                                   "seconds": seconds,
                                   "speedup": speedup})
            rows.append((label, workers,
                         f"{serial_seconds * 1e3:.1f}",
                         f"{seconds * 1e3:.1f}",
                         f"{speedup:.2f}x"))
        ledger["workloads"].append(entry)

    # -- governed edges: same error family as serial, all backends ----
    governed = _governed_edges()
    ledger["governed"] = governed
    for cell, status in sorted(governed.items()):
        rows.append((f"governed:{cell}", "-", "-", "-", status))

    emit_table(
        EXPERIMENT,
        "E22  morsel-driven scaling, process backend "
        f"({'smoke' if SMOKE else 'full'} tier, "
        f"{os.cpu_count()} cpu)",
        ["workload", "workers", "serial ms", "parallel ms", "speedup"],
        rows)

    ledger["speedup_at_4_workers"] = best_speedup_at_target
    with open(os.path.join(RESULTS_DIR, f"{EXPERIMENT}.json"), "w",
              encoding="utf-8") as handle:
        json.dump(ledger, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # acceptance: >= 2x at 4 workers — only meaningful with >= 4 cores
    if not SMOKE and (os.cpu_count() or 1) >= 4:
        assert best_speedup_at_target >= SPEEDUP_FLOOR, (
            f"best speedup at {SPEEDUP_WORKERS} workers was "
            f"{best_speedup_at_target:.2f}x < {SPEEDUP_FLOOR}x")

    # timing fixture: the dedup workload at 2 workers
    db = _dedup_db()
    expr = dedup_chain()
    benchmark(lambda: evaluate(expr, db, cache=None, engine="parallel",
                               workers=2, parallel_backend="process",
                               parallel_threshold=0.0))


def _governed_edges():
    """Drive every governance path through the exchange on both
    backends and record exact error types; workers must all terminate
    (the pool context-managers join them) and the surfaced error must
    be the same GovernedError subclass the serial engine raises."""
    expr = dedup_chain(2)
    db = _dedup_db()
    statuses = {}
    once = RetryPolicy(attempts=1)

    for backend in ("thread", "process"):
        for cell, limits, expected in (
                ("steps", Limits(max_steps=5), BudgetExceeded),
                ("deadline", Limits(timeout=1e-9), DeadlineExceeded)):

            def edge(governor, limits=limits, backend=backend):
                return evaluate(expr, db, cache=None, limits=limits,
                                engine="parallel", workers=2,
                                parallel_backend=backend,
                                parallel_threshold=0.0)

            outcome = governed_cell(EXPERIMENT,
                                    f"edge-{cell}-{backend}", edge,
                                    policy=once)
            assert isinstance(outcome.error, expected), outcome.error
            statuses[f"{cell}-{backend}"] = outcome.status

    # pre-cancelled token: no worker may produce a result
    def cancelled_edge(governor):
        token = CancellationToken()
        token.cancel("benchmark abort")
        return evaluate(expr, db, cache=None, engine="parallel",
                        workers=2, parallel_threshold=0.0,
                        governor=ResourceGovernor(
                            Limits(max_steps=10**9), token=token))

    outcome = governed_cell(EXPERIMENT, "edge-cancelled",
                            cancelled_edge, policy=once)
    assert isinstance(outcome.error, Cancelled), outcome.error
    statuses["cancelled"] = outcome.status

    # powerset budget inside a barrier leaf: the blow-up happens in a
    # worker's oracle-evaluated leaf and must surface as the same
    # BudgetExceeded(budget="powerset") the serial engine raises
    atoms = Bag.from_counts({Tup(i): 1 for i in range(40)})
    powerset_expr = Dedup(AdditiveUnion(Powerset(var("T")),
                                        Powerset(var("T"))))

    def powerset_edge(governor):
        return evaluate(powerset_expr, {"T": atoms}, cache=None,
                        engine="parallel", workers=2,
                        parallel_threshold=0.0, powerset_budget=64)

    outcome = governed_cell(EXPERIMENT, "edge-powerset",
                            powerset_edge, policy=once)
    assert isinstance(outcome.error, BudgetExceeded), outcome.error
    assert outcome.error.details.get("budget") == "powerset"
    statuses["powerset"] = outcome.status
    return statuses
