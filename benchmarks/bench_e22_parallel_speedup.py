"""E22 — morsel-driven parallel scaling (systems, not a paper claim).

Two workloads sweep the worker counts 1/2/4/8 on the ``process``
backend (the ``thread`` backend shares the GIL, so pure-Python kernels
cannot scale there — see docs/parallel.md):

* **dedup-heavy** — a symmetric-difference/dedup chain whose whole
  body compiles into one shard-local program, so each morsel runs the
  entire chain on its hash shard with zero cross-worker traffic;
* **join-heavy** — ``eps(sigma_{a2=a3}(L x R))``: both sides are
  hash-partitioned on the join key, each worker builds and probes its
  own shard-local table.

Every cell asserts **bag-equality against the serial physical
engine** before its timing is recorded — scaling numbers for wrong
answers are worthless.  A third battery drives the governed edges:
step budgets, near-zero deadlines, pre-cancelled tokens, and a
powerset budget blowing up inside a barrier leaf must surface the
*same* GovernedError types as the serial engine, with all workers
torn down.

A **serialization** micro-cell measures what one morsel costs on the
wire: the join-heavy workload's actual exchange shards (inputs
key-partitioned as the exchange would, plus the join output), encoded
by the columnar codec vs pickled — bytes and encode+decode wall-time
per morsel.  The codec must ship at least 5x fewer bytes.

Acceptance gates, all recorded in
``results/e22_parallel.status.json`` so a *skipped* gate is
distinguishable from a *failed* one:

* ``speedup`` — >= 2x at 4 workers on at least one workload;
  asserted only with ``os.cpu_count() >= 4`` and ``E22_SMOKE`` unset
  (a 1-2 core container still runs every equality and governance
  check but cannot honestly fail a hardware-bound scaling target);
  skipped gates carry the reason (``smoke tier`` / ``N cpu < 4``).
* ``smoke-overhead`` — in smoke mode the 2-worker **thread** run
  must reach at least 0.9x of serial on one workload: on a box with
  fewer than 4 cores, process IPC is a structural loss (nothing to
  overlap with the shipping), so the thread rung is the honest
  measure of what the substrate itself costs — split, dispatch,
  governance, ordered merge.  With the columnar segment programs it
  in fact *beats* the serial stream engine at realistic sizes.
* ``serialization`` — codec bytes * 5 <= pickle bytes on the
  join-heavy morsels (always asserted; no hardware dependence).

Results persist to ``results/e22_parallel.txt`` (human table),
``results/e22_parallel.json`` (machine-readable, consumed by
``benchmarks/collect.py``), and ``results/e22_parallel.status.json``
(governed-cell statuses + cpu/mode/gate metadata).
"""

from __future__ import annotations

import json
import os
import pickle
import time

from benchmarks.conftest import (
    RESULTS_DIR, emit_table, governed_cell, record_cell_status,
    record_experiment_meta,
)
from repro.core.bag import Bag, Tup
from repro.core.errors import (
    BudgetExceeded, Cancelled, DeadlineExceeded,
)
from repro.core.expr import (
    AdditiveUnion, Attribute, Cartesian, Dedup, Lam, Powerset, Select,
    Subtraction, Var, var,
)
from repro.engine import EngineStats, evaluate
from repro.engine.parallel import (
    decode_shard, encode_shard, split_counts,
)
from repro.guard import (
    CancellationToken, Limits, ResourceGovernor, RetryPolicy,
)

EXPERIMENT = "e22_parallel"

SMOKE = bool(os.environ.get("E22_SMOKE"))

WORKER_SWEEP = (1, 2, 4, 8)

SPEEDUP_FLOOR = 2.0        # at 4 workers, on at least one workload
SPEEDUP_WORKERS = 4

SMOKE_FLOOR = 0.9          # 2-worker overhead bound in smoke mode
SMOKE_WORKERS = 2

CODEC_FACTOR = 5           # codec ships >= 5x fewer bytes than pickle

#: (atoms, copies) per workload — the smoke tier keeps CI fast while
#: still exercising every shard/merge/governance path; sizes sit
#: above the pool-spawn noise floor so the overhead gate is a real
#: measurement, not a fixed-cost artifact.
DEDUP_SIZE = (3000, 6) if SMOKE else (6000, 8)
JOIN_SIZE = 600 if SMOKE else 1400

LIMITS = Limits(max_steps=500_000_000, timeout=300.0)


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------


def _dedup_db():
    atoms, copies = DEDUP_SIZE
    X = Bag.from_counts({Tup(i % atoms, (i * 7) % atoms): (i % copies) + 1
                         for i in range(atoms * 2)})
    Y = Bag.from_counts({Tup(i % atoms, (i * 5) % atoms): (i % 3) + 1
                         for i in range(atoms)})
    return {"X": X, "Y": Y}


def dedup_chain(depth: int = 3):
    """eps((X - Y) (+) (Y - X)) iterated: one shard-local program."""
    x, y = var("X"), var("Y")
    for _ in range(depth):
        x = Dedup(AdditiveUnion(Subtraction(x, y), Subtraction(y, x)))
    return x


def _join_db():
    n = JOIN_SIZE
    L = Bag.from_counts({Tup(i % n, (i * 3) % 97): (i % 2) + 1
                         for i in range(n * 2)})
    R = Bag.from_counts({Tup((i * 3) % 97, i % n): (i % 3) + 1
                         for i in range(n * 2)})
    return {"L": L, "R": R}


def join_query():
    """eps(sigma_{a2=a3}(L x R)): hash-partitioned on the join key."""
    return Dedup(Select(Lam("t", Attribute(Var("t"), 2)),
                        Lam("t", Attribute(Var("t"), 3)),
                        Cartesian(var("L"), var("R"))))


WORKLOADS = [
    ("dedup-heavy", dedup_chain(), _dedup_db),
    ("join-heavy", join_query(), _join_db),
]


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _timed_best(fn, repeats: int = 3):
    """Best-of-N timing for the cells a gate hangs on: single-shot
    wall clock on a small shared box is too noisy to gate against."""
    value, best = _timed(fn)
    for _ in range(repeats - 1):
        _, seconds = _timed(fn)
        best = min(best, seconds)
    return value, best


# ----------------------------------------------------------------------
# The experiment
# ----------------------------------------------------------------------


def test_e22_parallel_speedup(benchmark):
    rows = []
    cpu_count = os.cpu_count() or 1
    ledger = {"experiment": EXPERIMENT, "smoke": SMOKE,
              "cpu_count": cpu_count, "workloads": []}
    best_speedup_at_target = 0.0
    best_speedup_at_smoke = 0.0

    for label, expr, make_db in WORKLOADS:
        db = make_db()

        def serial_cell(governor, expr=expr, db=db):
            return _timed_best(lambda: evaluate(expr, db, cache=None,
                                                governor=governor))

        outcome = governed_cell(EXPERIMENT, f"{label}-serial",
                                serial_cell, limits=LIMITS)
        assert outcome.status == "ok", outcome.status
        reference, serial_seconds = outcome.value

        entry = {"workload": label, "serial_seconds": serial_seconds,
                 "cells": []}
        for workers in WORKER_SWEEP:
            stats = EngineStats()

            def parallel_cell(governor, expr=expr, db=db,
                              workers=workers, stats=stats):
                return _timed(lambda: evaluate(
                    expr, db, cache=None, governor=governor,
                    engine="parallel", workers=workers,
                    parallel_backend="process",
                    parallel_threshold=0.0, stats=stats))

            outcome = governed_cell(EXPERIMENT, f"{label}-w{workers}",
                                    parallel_cell, limits=LIMITS)
            assert outcome.status == "ok", outcome.status
            result, seconds = outcome.value
            # bag-equality on EVERY cell, before any timing is kept
            assert result == reference, (label, workers)
            speedup = serial_seconds / seconds
            if workers == SPEEDUP_WORKERS:
                best_speedup_at_target = max(best_speedup_at_target,
                                             speedup)
            if workers == SMOKE_WORKERS:
                best_speedup_at_smoke = max(best_speedup_at_smoke,
                                            speedup)
            entry["cells"].append({"workers": workers,
                                   "seconds": seconds,
                                   "speedup": speedup,
                                   "bytes_shipped":
                                       stats.bytes_shipped})
            rows.append((label, workers,
                         f"{serial_seconds * 1e3:.1f}",
                         f"{seconds * 1e3:.1f}",
                         f"{speedup:.2f}x"))

        # thread rung at 2 workers: the substrate-overhead measure
        # behind the smoke gate (no IPC, shared-memory shards).  One
        # untimed warm-up run first: the resident pool spawn and the
        # per-worker segment compile are process-wide one-time costs
        # by design, and the gate measures steady-state overhead.
        evaluate(expr, db, cache=None, engine="parallel",
                 workers=SMOKE_WORKERS, parallel_threshold=0.0)

        def thread_cell(governor, expr=expr, db=db):
            return _timed_best(lambda: evaluate(
                expr, db, cache=None, governor=governor,
                engine="parallel", workers=SMOKE_WORKERS,
                parallel_threshold=0.0))

        outcome = governed_cell(EXPERIMENT, f"{label}-thread-w2",
                                thread_cell, limits=LIMITS)
        assert outcome.status == "ok", outcome.status
        result, seconds = outcome.value
        assert result == reference, (label, "thread")
        thread_speedup = serial_seconds / seconds
        best_speedup_at_smoke = max(best_speedup_at_smoke,
                                    thread_speedup)
        entry["thread_2w_seconds"] = seconds
        entry["thread_2w_speedup"] = thread_speedup
        rows.append((f"{label} (thread)", SMOKE_WORKERS,
                     f"{serial_seconds * 1e3:.1f}",
                     f"{seconds * 1e3:.1f}",
                     f"{thread_speedup:.2f}x"))
        ledger["workloads"].append(entry)

    # -- serialization: codec vs pickle on real morsel shards ---------
    serialization = _serialization_cell()
    ledger["serialization"] = serialization
    rows.append(("serialization:codec", "-",
                 f"{serialization['pickle_bytes_per_morsel']:.0f} B",
                 f"{serialization['codec_bytes_per_morsel']:.0f} B",
                 f"{serialization['bytes_ratio']:.1f}x"))

    # -- governed edges: same error family as serial, all backends ----
    governed = _governed_edges()
    ledger["governed"] = governed
    for cell, status in sorted(governed.items()):
        rows.append((f"governed:{cell}", "-", "-", "-", status))

    emit_table(
        EXPERIMENT,
        "E22  morsel-driven scaling, process backend "
        f"({'smoke' if SMOKE else 'full'} tier, "
        f"{cpu_count} cpu)",
        ["workload", "workers", "serial ms", "parallel ms", "speedup"],
        rows)

    ledger["speedup_at_4_workers"] = best_speedup_at_target
    ledger["speedup_at_2_workers"] = best_speedup_at_smoke
    gates = _gates(cpu_count, best_speedup_at_target,
                   best_speedup_at_smoke, serialization)
    ledger["gates"] = gates
    with open(os.path.join(RESULTS_DIR, f"{EXPERIMENT}.json"), "w",
              encoding="utf-8") as handle:
        json.dump(ledger, handle, indent=2, sort_keys=True)
        handle.write("\n")
    record_experiment_meta(EXPERIMENT, cpu_count=cpu_count,
                           mode="smoke" if SMOKE else "full",
                           gates=gates)

    for name, gate in sorted(gates.items()):
        assert gate["status"] != "failed", (name, gate)

    # timing fixture: the dedup workload at 2 workers
    db = _dedup_db()
    expr = dedup_chain()
    benchmark(lambda: evaluate(expr, db, cache=None, engine="parallel",
                               workers=2, parallel_backend="process",
                               parallel_threshold=0.0))


def _serialization_cell():
    """Bytes and wall-time per morsel: columnar codec vs pickle.

    The morsel set is what the join-heavy exchange would actually
    ship at 4 shards: both inputs key-partitioned on the join key,
    plus the per-shard join output coming back.  Both codecs are
    round-tripped (encode + decode) so the times are comparable costs
    of crossing the process boundary, not just of writing."""
    db = _join_db()
    reference = evaluate(join_query(), db, cache=None)
    num_shards = 4
    morsels = (split_counts(dict(db["L"].items()), num_shards, key=(2,))
               + split_counts(dict(db["R"].items()), num_shards,
                              key=(1,))
               + split_counts(dict(reference.items()), num_shards))
    morsels = [shard for shard in morsels if shard]
    codec_bytes = pickle_bytes = 0
    codec_seconds = pickle_seconds = 0.0
    for counts in morsels:
        start = time.perf_counter()
        blob = encode_shard(counts)
        decoded = decode_shard(blob)
        codec_seconds += time.perf_counter() - start
        assert decoded == counts
        start = time.perf_counter()
        dumped = pickle.dumps(counts,
                              protocol=pickle.HIGHEST_PROTOCOL)
        assert pickle.loads(dumped) == counts
        pickle_seconds += time.perf_counter() - start
        codec_bytes += len(blob)
        pickle_bytes += len(dumped)
    n = len(morsels)
    return {
        "morsels": n,
        "codec_bytes": codec_bytes,
        "pickle_bytes": pickle_bytes,
        "codec_bytes_per_morsel": codec_bytes / n,
        "pickle_bytes_per_morsel": pickle_bytes / n,
        "codec_seconds_per_morsel": codec_seconds / n,
        "pickle_seconds_per_morsel": pickle_seconds / n,
        "bytes_ratio": pickle_bytes / codec_bytes,
    }


def _gates(cpu_count, best_at_target, best_at_smoke, serialization):
    """The acceptance gates, each with an explicit verdict.

    ``status`` is ``passed`` / ``failed`` / ``skipped``; skipped
    gates carry a ``reason`` so the status file distinguishes "the
    box cannot run this" from "the code missed the bar"."""
    speedup = {"floor": SPEEDUP_FLOOR, "workers": SPEEDUP_WORKERS,
               "best_speedup": best_at_target, "cpu_count": cpu_count}
    if SMOKE:
        speedup["status"] = "skipped"
        speedup["reason"] = "smoke tier"
    elif cpu_count < SPEEDUP_WORKERS:
        speedup["status"] = "skipped"
        speedup["reason"] = f"{cpu_count} cpu < {SPEEDUP_WORKERS}"
    else:
        speedup["status"] = ("passed"
                             if best_at_target >= SPEEDUP_FLOOR
                             else "failed")

    smoke = {"floor": SMOKE_FLOOR, "workers": SMOKE_WORKERS,
             "best_speedup": best_at_smoke, "cpu_count": cpu_count,
             "measure": "best of thread/process at 2 workers"}
    if not SMOKE:
        smoke["status"] = "skipped"
        smoke["reason"] = "full tier (scaling gate applies instead)"
    else:
        smoke["status"] = ("passed" if best_at_smoke >= SMOKE_FLOOR
                           else "failed")

    codec = {"factor": CODEC_FACTOR,
             "bytes_ratio": serialization["bytes_ratio"],
             "status": ("passed"
                        if serialization["codec_bytes"] * CODEC_FACTOR
                        <= serialization["pickle_bytes"]
                        else "failed")}
    return {"speedup": speedup, "smoke-overhead": smoke,
            "serialization": codec}


def _governed_edges():
    """Drive every governance path through the exchange on both
    backends and record exact error types; workers must all terminate
    (the pool context-managers join them) and the surfaced error must
    be the same GovernedError subclass the serial engine raises."""
    expr = dedup_chain(2)
    db = _dedup_db()
    statuses = {}
    once = RetryPolicy(attempts=1)

    for backend in ("thread", "process"):
        for cell, limits, expected in (
                ("steps", Limits(max_steps=5), BudgetExceeded),
                ("deadline", Limits(timeout=1e-9), DeadlineExceeded)):

            def edge(governor, limits=limits, backend=backend):
                return evaluate(expr, db, cache=None, limits=limits,
                                engine="parallel", workers=2,
                                parallel_backend=backend,
                                parallel_threshold=0.0)

            outcome = governed_cell(EXPERIMENT,
                                    f"edge-{cell}-{backend}", edge,
                                    policy=once)
            assert isinstance(outcome.error, expected), outcome.error
            statuses[f"{cell}-{backend}"] = outcome.status

    # pre-cancelled token: no worker may produce a result
    def cancelled_edge(governor):
        token = CancellationToken()
        token.cancel("benchmark abort")
        return evaluate(expr, db, cache=None, engine="parallel",
                        workers=2, parallel_threshold=0.0,
                        governor=ResourceGovernor(
                            Limits(max_steps=10**9), token=token))

    outcome = governed_cell(EXPERIMENT, "edge-cancelled",
                            cancelled_edge, policy=once)
    assert isinstance(outcome.error, Cancelled), outcome.error
    statuses["cancelled"] = outcome.status

    # powerset budget inside a barrier leaf: the blow-up happens in a
    # worker's oracle-evaluated leaf and must surface as the same
    # BudgetExceeded(budget="powerset") the serial engine raises
    atoms = Bag.from_counts({Tup(i): 1 for i in range(40)})
    powerset_expr = Dedup(AdditiveUnion(Powerset(var("T")),
                                        Powerset(var("T"))))

    def powerset_edge(governor):
        return evaluate(powerset_expr, {"T": atoms}, cache=None,
                        engine="parallel", workers=2,
                        parallel_threshold=0.0, powerset_budget=64)

    outcome = governed_cell(EXPERIMENT, "edge-powerset",
                            powerset_edge, policy=once)
    assert isinstance(outcome.error, BudgetExceeded), outcome.error
    assert outcome.error.details.get("budget") == "powerset"
    statuses["powerset"] = outcome.status
    return statuses
