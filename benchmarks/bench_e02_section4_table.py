"""E02 — the Section 4 worked table: occurrence counting through a
query.

Paper table, for B with n copies of [a,b] and m of [b,a], and
Q(B) = pi_{1,4}(sigma_{alpha2=alpha3}(B x B))::

    tuple   B      Q(B)        tuple    B x B    sigma(B x B)
    ab      n      0           abab     n^2      0
    ba      m      0           baba     m^2      0
    aa      0      nm          baab     nm       nm
    bb      0      nm          abba     nm       nm

The benchmark reproduces every cell for a sweep of (n, m) and times
the query evaluation.
"""

from __future__ import annotations

from benchmarks.conftest import emit_table
from repro.core.bag import Bag, Tup
from repro.core.derived import project_expr, select_attr_eq_attr
from repro.core.eval import evaluate
from repro.core.expr import Cartesian, var


def _query():
    return project_expr(
        select_attr_eq_attr(Cartesian(var("B"), var("B")), 2, 3), 1, 4)


def _input(n: int, m: int) -> Bag:
    return Bag.from_counts({Tup("a", "b"): n, Tup("b", "a"): m})


def test_e02_occurrence_table(benchmark):
    rows = []
    for n, m in [(1, 1), (2, 3), (5, 2), (4, 4), (7, 3)]:
        bag = _input(n, m)
        product = evaluate(Cartesian(var("B"), var("B")), B=bag)
        selected = evaluate(select_attr_eq_attr(
            Cartesian(var("B"), var("B")), 2, 3), B=bag)
        result = evaluate(_query(), B=bag)
        # every cell of the paper's table:
        assert product.multiplicity(Tup("a", "b", "a", "b")) == n * n
        assert product.multiplicity(Tup("b", "a", "b", "a")) == m * m
        assert product.multiplicity(Tup("b", "a", "a", "b")) == n * m
        assert selected.multiplicity(Tup("a", "b", "a", "b")) == 0
        assert selected.multiplicity(Tup("b", "a", "a", "b")) == n * m
        assert selected.multiplicity(Tup("a", "b", "b", "a")) == n * m
        assert result.multiplicity(Tup("a", "b")) == 0
        assert result.multiplicity(Tup("b", "a")) == 0
        assert result.multiplicity(Tup("a", "a")) == n * m
        assert result.multiplicity(Tup("b", "b")) == n * m
        rows.append((n, m, n * n, m * m, n * m,
                     result.multiplicity(Tup("a", "a"))))
    emit_table(
        "e02_section4",
        "E02  Q(B)=pi14(sigma23(BxB)) occurrence polynomials "
        "(paper: aa/bb get nm)",
        ["n", "m", "abab in BxB", "baba in BxB", "baab in BxB",
         "aa in Q(B)"], rows)

    bag = _input(5, 4)
    benchmark(lambda: evaluate(_query(), B=bag))
