"""E01 — Proposition 3.2: the duplicate-explosion closed forms.

Paper claim: for a bag of k constants with m occurrences each,
``delta(P(B))`` holds ``m(m+1)^k / 2`` occurrences of each constant and
``delta(delta(P(P(B))))`` holds ``2^((m+1)^k - 2) (m+1)^k m``.

The benchmark sweeps (k, m), measures the interpreter, and checks the
formulas exactly; the timed kernel is one delta-P round.  Every sweep
cell runs through :func:`~benchmarks.conftest.governed_cell` with a
powerset budget, so a hostile parameter point would be recorded as a
``budget-exceeded`` data point in ``results/*.status.json`` instead of
aborting the battery.
"""

from __future__ import annotations

from benchmarks.conftest import emit_table, governed_cell
from repro.complexity import (
    delta2_p2_occurrences, delta_p_occurrences, measure_delta2_p2,
    measure_delta_p, uniform_bag,
)
from repro.core.ops import bag_destroy, powerset

#: Enough for every (k, m) point below; a sweep extension that blows
#: past it degrades to a recorded budget-exceeded cell.
CELL_BUDGET = 1 << 22


def test_e01_delta_p_table(benchmark):
    rows = []
    for k, m in [(1, 1), (1, 2), (1, 4), (2, 1), (2, 2), (2, 3),
                 (3, 1), (3, 2)]:
        def compute(governor, k=k, m=m):
            measured = measure_delta_p(uniform_bag(k, m), 1,
                                       budget=CELL_BUDGET)[0]
            predicted = delta_p_occurrences(m, k)
            assert measured.max_multiplicity == predicted
            return (k, m, measured.max_multiplicity, predicted,
                    "exact")
        outcome = governed_cell("e01_delta_p", f"k={k},m={m}", compute)
        assert outcome.ok, outcome.error
        rows.append(outcome.value)
    emit_table(
        "e01_delta_p", "E01a  delta(P(B)) duplicate counts "
        "(paper: m(m+1)^k/2)",
        ["k", "m", "measured", "closed form", "match"], rows)

    bag = uniform_bag(2, 3)
    benchmark(lambda: bag_destroy(powerset(bag)))


def test_e01_delta2_p2_table(benchmark):
    rows = []
    for k, m in [(1, 1), (1, 2), (1, 3), (2, 1), (2, 2)]:
        def compute(governor, k=k, m=m):
            measured = measure_delta2_p2(uniform_bag(k, m), 1,
                                         budget=CELL_BUDGET)[0]
            predicted = delta2_p2_occurrences(m, k)
            assert measured.max_multiplicity == predicted
            return (k, m, f"{measured.max_multiplicity:,}",
                    f"{predicted:,}", "exact")
        outcome = governed_cell("e01_delta2_p2", f"k={k},m={m}",
                                compute)
        assert outcome.ok, outcome.error
        rows.append(outcome.value)
    emit_table(
        "e01_delta2_p2", "E01b  delta^2(P^2(B)) duplicate counts "
        "(paper: 2^((m+1)^k-2) (m+1)^k m)",
        ["k", "m", "measured", "closed form", "match"], rows)

    bag = uniform_bag(1, 2)
    benchmark(lambda: bag_destroy(bag_destroy(
        powerset(powerset(bag)))))


def test_e01_growth_regimes(benchmark):
    """The qualitative shape: delta-P grows polynomially after its
    first (exponential) step; delta^2-P^2 restarts the exponential
    every round."""
    series = measure_delta_p(uniform_bag(1, 2), 4)
    rows = [(step.iteration, f"{step.max_multiplicity:,}")
            for step in series]
    emit_table(
        "e01_regimes", "E01c  (delta P)^i: polynomial growth after "
        "the first application",
        ["i", "max multiplicity"], rows)
    for previous, current in zip(series, series[1:]):
        # polynomial step: bounded by the square of the previous value
        assert current.max_multiplicity <= (
            previous.max_multiplicity + 1) ** 2

    benchmark(lambda: measure_delta_p(uniform_bag(1, 2), 3))
