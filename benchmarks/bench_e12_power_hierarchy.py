"""E12 — Theorems 6.1 / 6.2: the power-nesting hierarchy.

Two measurements:

* the growth asymmetry that drives the hierarchy — (delta P)^i stays
  single-exponential (polynomial per extra application) while
  (delta delta P P)^i gains an exponential per i, and (delta Pb)^i
  does so with no typing escape hatch;
* the syntactic power nesting of the Theorem 6.1 building blocks
  (E, D, and the computation-guessing expression), confirming the
  2i + 2 powerset count the proof of Theorem 6.2 relies on.
"""

from __future__ import annotations

import math

from benchmarks.conftest import emit_table
from repro.complexity import (
    measure_delta2_p2, measure_delta_p, measure_delta_pb, uniform_bag,
)
from repro.core.derived import project_expr
from repro.core.expr import Cartesian, Const, Powerset, var
from repro.core.fragments import power_nesting
from repro.core.bag import Bag, Tup


def test_e12_growth_asymmetry(benchmark):
    rows = []
    dp = measure_delta_p(uniform_bag(1, 2), 4)
    for step in dp:
        rows.append(("(delta P)^i", step.iteration,
                     f"{step.max_multiplicity:,}",
                     f"{math.log2(step.max_multiplicity):.1f}"))
    dpb = measure_delta_pb(uniform_bag(1, 2), 3)
    for step in dpb:
        rows.append(("(delta Pb)^i", step.iteration,
                     f"{step.max_multiplicity:,}",
                     f"{math.log2(step.max_multiplicity):.1f}"))
    d2p2 = measure_delta2_p2(uniform_bag(1, 1), 2)
    for step in d2p2:
        rows.append(("(d d P P)^i", step.iteration,
                     f"{step.max_multiplicity:,}",
                     f"{math.log2(step.max_multiplicity):.1f}"))
    emit_table(
        "e12_asymmetry",
        "E12a  growth regimes: log2(max multiplicity) per iteration "
        "(poly vs exponential vs hyper)",
        ["pipeline", "i", "max multiplicity", "log2"], rows)

    # delta-P: log2 grows ~2x per step (squaring = polynomial);
    # delta-Pb and ddPP: log2 itself grows by the previous value.
    dp_log = [math.log2(s.max_multiplicity) for s in dp]
    assert dp_log[-1] / dp_log[-2] < 2.5          # polynomial regime
    dpb_log = [math.log2(s.max_multiplicity) for s in dpb]
    assert dpb_log[-1] > 1.9 * dpb_log[-2]        # exponential regime

    benchmark(lambda: measure_delta_p(uniform_bag(1, 2), 3))


def test_e12_power_nesting_of_constructions(benchmark):
    """Theorem 6.2's counting: D(B) = P(E^i(B)) with
    E(B) = N(P(P(N(B)))) uses 2i + 1 nested powersets; the computation
    guess adds one more (2i + 2 total)."""

    def normalize(operand):
        return project_expr(
            Cartesian(Const(Bag.of(Tup("a"))), operand), 1)

    def doubling(operand):
        return normalize(Powerset(Powerset(normalize(operand))))

    rows = []
    for i in (0, 1, 2, 3):
        core = normalize(var("B"))
        for _ in range(i):
            core = doubling(core)
        domain = Powerset(core)
        guess = Powerset(domain)   # the final P over the candidates
        measured = power_nesting(guess)
        expected = 2 * i + 2
        assert measured == expected
        rows.append((i, power_nesting(domain), measured, expected))
    emit_table(
        "e12_nesting",
        "E12b  power nesting of the Theorem 6.1 constructions "
        "(2i + 2 powersets encode hyper(i)-time)",
        ["i", "nesting of D", "nesting of guess", "paper 2i+2"], rows)

    benchmark(lambda: power_nesting(
        Powerset(Powerset(normalize(var("B"))))))
