"""E24 — fault-tolerant parallel execution under injected chaos.

The e22 workload battery (dedup-heavy chain, hash join) reruns on the
``thread`` backend with :class:`~repro.guard.ChaosPlan` worker-crash
faults at probabilities p in {0, 0.1, 0.3}, resilience on.  Three
claims are measured per cell:

* **completion** — every run must produce a value (the serial ladder
  floor never consults chaos, so completion rate must be 1.0);
* **bag equality vs the oracle** — a retried/demoted run that answers
  *differently* is worse than one that dies; every cell asserts
  equality against the serial physical engine before anything else is
  recorded;
* **bounded degradation** — on the thread backend the ladder is
  thread → serial, so a query can demote at most once; the battery
  asserts <= 1 demotion per query and records retry/demotion counts.

The p=0 column doubles as the overhead check: resilience-on with no
chaos must track resilience-off latency (best-of-``REPEATS`` on both
sides; the acceptance bound is generous because container timing is
noisy, the honest number persists in the JSON either way).

Cells run through :func:`benchmarks.conftest.governed_cell` with the
``classify`` hook, so a run that only completed via a ladder demotion
persists as ``degraded`` in ``results/e24_resilience.status.json`` —
never a silent ``ok``.

Results persist to ``results/e24_resilience.txt`` (human table),
``results/e24_resilience.json`` (machine-readable, consumed by
``benchmarks/collect.py``), and ``results/e24_resilience.status.json``.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.bench_e22_parallel_speedup import (
    _dedup_db, _join_db, dedup_chain, join_query,
)
from benchmarks.conftest import RESULTS_DIR, emit_table, governed_cell
from repro.engine import EngineStats, ResilienceConfig, evaluate
from repro.guard import ChaosPlan, Limits, RetryPolicy

EXPERIMENT = "e24_resilience"

SMOKE = bool(os.environ.get("E24_SMOKE"))

#: Worker-crash probability per (shard, attempt) decision.
PROBABILITIES = (0.0, 0.1, 0.3)

#: Chaos runs per (workload, p) cell — distinct seeds, so the firing
#: patterns differ while staying replayable.
REPEATS = 2 if SMOKE else 5

WORKERS = 2

#: Zero-fault latency overhead ceiling (resilience-on vs -off,
#: best-of-REPEATS).  The design target is < 5%; the asserted bound
#: is looser because container timing is noisy.
OVERHEAD_CEILING = 0.25

LIMITS = Limits(max_steps=500_000_000, timeout=300.0)

WORKLOADS = [
    ("dedup-heavy", dedup_chain(), _dedup_db),
    ("join-heavy", join_query(), _join_db),
]


def _resilience(probability: float, seed: int) -> ResilienceConfig:
    """Five attempts per morsel: at p=0.3 the chance a shard burns all
    of them (forcing the single thread → serial demotion) is 0.3^5 —
    the <= 1-demotion acceptance has slack even across repeats."""
    chaos = None
    if probability > 0.0:
        chaos = ChaosPlan(kind="worker-crash", probability=probability,
                          seed=seed)
    return ResilienceConfig(retry=RetryPolicy(attempts=5), seed=seed,
                            chaos=chaos)


def _run(expr, db, governor, resilience=None, stats=None):
    start = time.perf_counter()
    value = evaluate(expr, db, cache=None, governor=governor,
                     engine="parallel", workers=WORKERS,
                     parallel_backend="thread", parallel_threshold=0.0,
                     resilience=resilience, stats=stats)
    return value, time.perf_counter() - start


def _classify(report):
    """governed_cell hook: a cell that survived only by demoting is a
    ``degraded`` data point, not an ``ok`` one."""
    if isinstance(report, dict) and report.get("demotions"):
        return "degraded"
    return None


def test_e24_resilience(benchmark):
    rows = []
    ledger = {"experiment": EXPERIMENT, "smoke": SMOKE,
              "cpu_count": os.cpu_count(), "workers": WORKERS,
              "repeats": REPEATS, "workloads": []}

    for label, expr, make_db in WORKLOADS:
        db = make_db()
        oracle = evaluate(expr, db, cache=None, limits=LIMITS)

        # -- baseline: resilience OFF, same backend/workers ------------
        def baseline_cell(governor, expr=expr, db=db):
            best = min(_run(expr, db, governor)[1]
                       for _ in range(REPEATS))
            return {"seconds": best, "demotions": 0}

        outcome = governed_cell(EXPERIMENT, f"{label}-baseline",
                                baseline_cell, limits=LIMITS,
                                classify=_classify)
        assert outcome.status == "ok", outcome.status
        baseline_seconds = outcome.value["seconds"]

        entry = {"workload": label,
                 "baseline_seconds": baseline_seconds, "cells": []}
        for probability in PROBABILITIES:

            def chaos_cell(governor, expr=expr, db=db, oracle=oracle,
                           probability=probability):
                completed = retries = demotions = 0
                worst_demotions = 0
                best = float("inf")
                for repeat in range(REPEATS):
                    stats = EngineStats()
                    config = _resilience(probability,
                                         seed=1 + repeat)
                    value, seconds = _run(expr, db, governor,
                                          resilience=config,
                                          stats=stats)
                    # bag-equality before anything is recorded
                    assert value == oracle, (probability, repeat)
                    # thread backend: the only rung below is serial
                    assert len(stats.demotions) <= 1, stats.demotions
                    completed += 1
                    retries += stats.morsel_retries
                    demotions += len(stats.demotions)
                    worst_demotions = max(worst_demotions,
                                          len(stats.demotions))
                    best = min(best, seconds)
                return {"completed": completed, "runs": REPEATS,
                        "retries": retries, "demotions": demotions,
                        "worst_demotions": worst_demotions,
                        "seconds": best}

            outcome = governed_cell(
                EXPERIMENT, f"{label}-p{probability:g}", chaos_cell,
                limits=LIMITS, classify=_classify)
            assert outcome.ok, outcome.status
            report = outcome.value
            assert report["completed"] == report["runs"]
            overhead = (report["seconds"] / baseline_seconds) - 1.0
            cell = dict(report, probability=probability,
                        overhead=overhead, status=outcome.status)
            entry["cells"].append(cell)
            if probability == 0.0:
                assert report["retries"] == 0, report
                assert report["demotions"] == 0, report
                entry["zero_fault_overhead"] = overhead
            rows.append((label, f"{probability:g}",
                         f"{report['completed']}/{report['runs']}",
                         report["retries"], report["demotions"],
                         f"{report['seconds'] * 1e3:.1f}",
                         f"{overhead * 100:+.1f}%",
                         outcome.status))
        ledger["workloads"].append(entry)

    emit_table(
        EXPERIMENT,
        "E24  fault-tolerant parallel execution, thread backend, "
        f"worker-crash chaos ({'smoke' if SMOKE else 'full'} tier, "
        f"{WORKERS} workers, best of {REPEATS})",
        ["workload", "p", "completed", "retries", "demotions",
         "best ms", "vs off", "status"],
        rows)

    with open(os.path.join(RESULTS_DIR, f"{EXPERIMENT}.json"), "w",
              encoding="utf-8") as handle:
        json.dump(ledger, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # acceptance: zero-fault resilience must be close to free
    if not SMOKE:
        for entry in ledger["workloads"]:
            assert entry["zero_fault_overhead"] <= OVERHEAD_CEILING, (
                entry["workload"], entry["zero_fault_overhead"])

    # timing fixture: the dedup workload under p=0.1 chaos
    db = _dedup_db()
    expr = dedup_chain()
    benchmark(lambda: evaluate(
        expr, db, cache=None, engine="parallel", workers=WORKERS,
        parallel_backend="thread", parallel_threshold=0.0,
        resilience=_resilience(0.1, seed=7)))
