"""E23 — staged planner: compile overhead and opt-level plan quality.

The planner (`repro.planner`) turned compilation into a visible,
staged pipeline; this battery measures what that costs and what it
buys, on the workload families E20/E22 established:

* **compile overhead** — per-stage wall-clock (`StageRecord.seconds`)
  for every workload at opt levels 0/1/2, averaged over repeated
  compilations.  The stages view is only honest if the pipeline
  itself is cheap: the battery asserts the *full* opt-2 compile of
  every workload stays under a fixed ceiling (milliseconds, not
  query-execution territory).
* **plan quality** — end-to-end engine execution of the same query at
  opt 0 (no rewrites, naive lowering) vs opt 2 (rewrite fixpoint +
  cost-based lowering), bag-equality asserted on every cell before
  any timing is kept.  The join workload shows cost-based lowering
  (hash join vs nested loop + filter); the rewrite-rich workload
  shows the algebraic fixpoint (a self-subtraction of a heavy join
  folds to the empty bag, map fusion halves a map chain).

Acceptance: opt 2 beats opt 0 by >= 2x on at least one workload
(full tier only — the ``E23_SMOKE`` sizes are too small to measure
honestly), and every compile stays under the overhead ceiling.

Results persist to ``results/e23_planner.txt`` (human table),
``results/e23_planner.json`` (machine-readable, consumed by
``benchmarks/collect.py``), and ``results/e23_planner.status.json``.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import (
    RESULTS_DIR, emit_table, governed_cell,
)
from repro.core.bag import Bag, Tup
from repro.core.expr import (
    AdditiveUnion, Attribute, Cartesian, Dedup, Lam, Map, Select,
    Subtraction, Var, var,
)
from repro.engine import evaluate
from repro.guard import Limits
from repro.planner import PassConfig, PlanContext
from repro.planner import compile as planner_compile

EXPERIMENT = "e23_planner"

SMOKE = bool(os.environ.get("E23_SMOKE"))

OPT_LEVELS = (0, 1, 2)
COMPILE_REPS = 25
#: ceiling on one full opt-2 compile (seconds) — the pipeline must
#: stay in interactive territory for the REPL's per-query use
COMPILE_CEILING = 0.05
SPEEDUP_FLOOR = 2.0

JOIN_SIZE = 120 if SMOKE else 900
CHAIN_SIZE = (200, 4) if SMOKE else (3000, 6)

LIMITS = Limits(max_steps=500_000_000, timeout=300.0)


# ----------------------------------------------------------------------
# Workloads (the E20/E22 families, planner-relevant variants)
# ----------------------------------------------------------------------


def _join_db():
    n = JOIN_SIZE
    L = Bag.from_counts({Tup(i % n, (i * 3) % 97): (i % 2) + 1
                         for i in range(n * 2)})
    R = Bag.from_counts({Tup((i * 3) % 97, i % n): (i % 3) + 1
                         for i in range(n * 2)})
    return {"L": L, "R": R}


def join_query():
    """eps(sigma_{a2=a3}(L x R)) — opt 0 runs the nested loop + filter,
    cost-based lowering fuses the hash join."""
    return Dedup(Select(Lam("t", Attribute(Var("t"), 2)),
                        Lam("t", Attribute(Var("t"), 3)),
                        Cartesian(var("L"), var("R"))))


def _chain_db():
    atoms, copies = CHAIN_SIZE
    X = Bag.from_counts({Tup(i % atoms, (i * 7) % atoms): (i % copies) + 1
                         for i in range(atoms * 2)})
    Y = Bag.from_counts({Tup(i % atoms, (i * 5) % atoms): (i % 3) + 1
                         for i in range(atoms)})
    return {"X": X, "Y": Y}


def dedup_chain(depth: int = 3):
    """The E22 shard-local chain: eps((X - Y) (+) (Y - X)) iterated."""
    x, y = var("X"), var("Y")
    for _ in range(depth):
        x = Dedup(AdditiveUnion(Subtraction(x, y), Subtraction(y, x)))
    return x


def rewrite_rich():
    """A query the rewrite fixpoint collapses almost entirely:
    the heavy join appears only inside a self-subtraction (folds to
    the empty bag at opt 2), leaving a fused two-map projection."""
    heavy = join_query()
    projected = Map(Lam("u", Attribute(Var("u"), 1)),
                    Map(Lam("t", Var("t")), var("L")))
    return AdditiveUnion(projected, Subtraction(heavy, heavy))


WORKLOADS = [
    ("join", join_query(), _join_db),
    ("dedup-chain", dedup_chain(), _chain_db),
    ("rewrite-rich", rewrite_rich(), _join_db),
]


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


# ----------------------------------------------------------------------
# The experiment
# ----------------------------------------------------------------------


def test_e23_planner(benchmark):
    rows = []
    ledger = {"experiment": EXPERIMENT, "smoke": SMOKE,
              "compile": [], "quality": []}

    # -- part 1: per-stage compile overhead ---------------------------
    worst_compile = 0.0
    for label, expr, make_db in WORKLOADS:
        db = make_db()
        for level in OPT_LEVELS:
            stage_seconds = {}
            firings = 0
            total = 0.0
            for _ in range(COMPILE_REPS):
                context = PlanContext.for_bindings(
                    db, engine="physical",
                    config=PassConfig.for_level(level))
                compiled = planner_compile(expr, context)
                for record in compiled.report.stages:
                    stage_seconds[record.stage] = (
                        stage_seconds.get(record.stage, 0.0)
                        + record.seconds)
                firings = compiled.report.total_firings
                total += compiled.report.total_seconds
            mean = total / COMPILE_REPS
            worst_compile = max(worst_compile, mean)
            stages = {stage: seconds / COMPILE_REPS
                      for stage, seconds in stage_seconds.items()}
            ledger["compile"].append(
                {"workload": label, "opt_level": level,
                 "stages": stages, "mean_seconds": mean,
                 "firings": firings})
            stage_text = " ".join(
                f"{stage}={seconds * 1e6:.0f}us"
                for stage, seconds in sorted(stages.items()))
            rows.append((f"compile:{label}", f"opt{level}",
                         f"{mean * 1e6:.0f}us",
                         f"fired={firings}", stage_text))

    # -- part 2: opt0-vs-opt2 end-to-end plan quality -----------------
    best_speedup = 0.0
    for label, expr, make_db in WORKLOADS:
        db = make_db()
        seconds = {}
        reference = None
        for level in (0, 2):

            def cell(governor, expr=expr, db=db, level=level):
                return _timed(lambda: evaluate(
                    expr, db, cache=None, governor=governor,
                    opt_level=level))

            outcome = governed_cell(EXPERIMENT,
                                    f"{label}-opt{level}", cell,
                                    limits=LIMITS)
            assert outcome.status == "ok", outcome.status
            result, elapsed = outcome.value
            # bag-equality across opt levels, before any timing is kept
            if reference is None:
                reference = result
            else:
                assert result == reference, label
            seconds[level] = elapsed
        speedup = seconds[0] / seconds[2]
        best_speedup = max(best_speedup, speedup)
        ledger["quality"].append(
            {"workload": label, "opt0_seconds": seconds[0],
             "opt2_seconds": seconds[2], "speedup": speedup})
        rows.append((f"quality:{label}", "opt0 vs opt2",
                     f"{seconds[0] * 1e3:.1f}ms",
                     f"{seconds[2] * 1e3:.1f}ms",
                     f"{speedup:.2f}x"))

    emit_table(
        EXPERIMENT,
        "E23  staged planner: compile overhead + opt0-vs-opt2 quality "
        f"({'smoke' if SMOKE else 'full'} tier)",
        ["cell", "config", "opt0 / mean", "opt2 / firings", "detail"],
        rows)

    ledger["worst_mean_compile_seconds"] = worst_compile
    ledger["best_speedup"] = best_speedup
    with open(os.path.join(RESULTS_DIR, f"{EXPERIMENT}.json"), "w",
              encoding="utf-8") as handle:
        json.dump(ledger, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # compile overhead must stay interactive at every level
    assert worst_compile < COMPILE_CEILING, (
        f"mean compile {worst_compile * 1e3:.1f}ms exceeds the "
        f"{COMPILE_CEILING * 1e3:.0f}ms ceiling")
    # acceptance: the optimizing pipeline pays for itself
    if not SMOKE:
        assert best_speedup >= SPEEDUP_FLOOR, (
            f"best opt2-over-opt0 speedup was {best_speedup:.2f}x "
            f"< {SPEEDUP_FLOOR}x")

    # timing fixture: one full opt-2 compile of the join workload
    db = _join_db()
    expr = join_query()

    def compile_once():
        context = PlanContext.for_bindings(
            db, engine="physical", config=PassConfig.for_level(2))
        return planner_compile(expr, context)

    benchmark(compile_once)
