"""E10 — Definition 5.1: powerset vs powerbag.

Paper numbers: on a bag of n occurrences of one constant the powerset
has cardinality n+1 while the powerbag has 2^n; the worked example
``Pb([[a,a]]) = [[{{}}, {{a}}, {{a}}, {{a,a}}]]``.  The benchmark
sweeps n, checks both cardinalities and the binomial multiplicities,
and times the two operators against each other.
"""

from __future__ import annotations

from math import comb

from benchmarks.conftest import emit_table
from repro.core.bag import Bag, EMPTY_BAG
from repro.core.ops import (
    powerbag, powerbag_multiplicity, powerset, powerset_cardinality,
)


def test_e10_cardinalities(benchmark):
    rows = []
    for n in range(0, 13, 2):
        bag = Bag.from_counts({"a": n}) if n else EMPTY_BAG
        p_card = powerset(bag).cardinality
        pb_card = powerbag(bag).cardinality
        assert p_card == n + 1
        assert pb_card == 2 ** n
        rows.append((n, p_card, f"{pb_card:,}", n + 1,
                     f"{2 ** n:,}"))
    emit_table(
        "e10_cardinalities",
        "E10a  |P(B^a_n)| = n+1 vs |Pb(B^a_n)| = 2^n (Section 1's "
        "motivating numbers)",
        ["n", "|P|", "|Pb|", "paper n+1", "paper 2^n"], rows)

    bag = Bag.from_counts({"a": 12})
    benchmark(lambda: powerset(bag))


def test_e10_worked_example_and_binomials(benchmark):
    result = powerbag(Bag.of("a", "a"))
    assert result.multiplicity(EMPTY_BAG) == 1
    assert result.multiplicity(Bag.of("a")) == 2
    assert result.multiplicity(Bag.of("a", "a")) == 1

    # multiplicities are products of binomials
    bag = Bag.from_counts({"a": 4, "b": 3})
    rows = []
    for j_a in range(5):
        for j_b in range(4):
            sub = Bag.from_counts({"a": j_a, "b": j_b})
            predicted = comb(4, j_a) * comb(3, j_b)
            assert powerbag_multiplicity(bag, sub) == predicted
            rows.append((j_a, j_b, predicted))
    emit_table(
        "e10_binomials",
        "E10b  multiplicity of {a^j1, b^j2} in Pb({a^4, b^3}) = "
        "C(4,j1) C(3,j2)",
        ["j_a", "j_b", "multiplicity"], rows)

    benchmark(lambda: powerbag(bag))


def test_e10_powerbag_cost_ratio(benchmark):
    """The tractability argument in one number: the ratio grows as
    2^n / (n+1)."""
    rows = []
    for n in (4, 8, 12):
        bag = Bag.from_counts({"a": n})
        ratio = powerbag(bag).cardinality / powerset(bag).cardinality
        rows.append((n, f"{ratio:,.1f}", f"{2 ** n / (n + 1):,.1f}"))
    emit_table(
        "e10_ratio",
        "E10c  output-size ratio Pb/P on duplicate-heavy bags",
        ["n", "measured ratio", "2^n/(n+1)"], rows)

    assert powerset_cardinality(Bag.from_counts({"a": 30})) == 31
    bag = Bag.from_counts({"a": 14})
    benchmark(lambda: powerbag(bag))
