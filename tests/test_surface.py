"""Tests for the surface syntax (lexer, parser, printer)."""

from __future__ import annotations

import pytest

from repro.core.bag import Bag, EMPTY_BAG, Tup
from repro.core.errors import ParseError
from repro.core.eval import evaluate
from repro.core.expr import (
    AdditiveUnion, Attribute, Cartesian, Const, Dedup, Intersection,
    Map, MaxUnion, Powerbag, Powerset, Select, Subtraction, Var, var,
)
from repro.surface import parse, to_text, tokenize


class TestLexer:
    def test_keywords_vs_identifiers(self):
        kinds = {token.text: token.kind for token in tokenize("P B eps")}
        assert kinds["P"] == "KEYWORD"
        assert kinds["B"] == "IDENT"
        assert kinds["eps"] == "KEYWORD"

    def test_alpha_with_index(self):
        tokens = tokenize("alpha12(t)")
        assert tokens[0].kind == "ALPHA"
        assert tokens[0].text == "alpha12"

    def test_multi_char_punctuation(self):
        kinds = [token.kind for token in tokenize("(+) != <= {{ }}")]
        assert kinds[:5] == ["ADDUNION", "NE", "LE", "LBAG", "RBAG"]

    def test_strings_and_ints(self):
        tokens = tokenize("'hello' 42")
        assert tokens[0].kind == "STRING"
        assert tokens[0].text == "hello"
        assert tokens[1].kind == "INT"

    def test_unclosed_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("B ? B")


class TestParser:
    def test_binary_operators(self):
        assert isinstance(parse("A (+) B"), AdditiveUnion)
        assert isinstance(parse("A - B"), Subtraction)
        assert isinstance(parse("A u B"), MaxUnion)
        assert isinstance(parse("A n B"), Intersection)
        assert isinstance(parse("A x B"), Cartesian)

    def test_precedence_product_tightest(self):
        expr = parse("A (+) B x C")
        assert isinstance(expr, AdditiveUnion)
        assert isinstance(expr.right, Cartesian)

    def test_precedence_extremes_over_sum(self):
        expr = parse("A - B n C")
        assert isinstance(expr, Subtraction)
        assert isinstance(expr.right, Intersection)

    def test_left_associativity(self):
        expr = parse("A - B - C")
        assert isinstance(expr, Subtraction)
        assert isinstance(expr.left, Subtraction)

    def test_parentheses(self):
        expr = parse("A - (B - C)")
        assert isinstance(expr.right, Subtraction)

    def test_unary_operators(self):
        assert isinstance(parse("P(B)"), Powerset)
        assert isinstance(parse("Pb(B)"), Powerbag)
        assert isinstance(parse("eps(B)"), Dedup)

    def test_attribute(self):
        expr = parse("alpha2(t)")
        assert isinstance(expr, Attribute)
        assert expr.index == 2

    def test_projection_sugar(self):
        expr = parse("pi[2,1](B)")
        assert isinstance(expr, Map)

    def test_map_and_sigma(self):
        expr = parse("sigma[t: alpha1(t) = 'a'](B)")
        assert isinstance(expr, Select)
        assert expr.op == "eq"
        assert parse("sigma[t: alpha1(t) != 'a'](B)").op == "ne"
        assert parse("sigma[t: alpha1(t) <= 'a'](B)").op == "le"
        assert parse("sigma[t: alpha1(t) < 'a'](B)").op == "lt"

    def test_bag_literal(self):
        expr = parse("{{'a', 'a', 'b'}}")
        assert isinstance(expr, Const)
        assert expr.value.multiplicity("a") == 2

    def test_bag_literal_of_tuples(self):
        expr = parse("{{['b', 1], ['b', 2]}}")
        assert Tup("b", 1) in expr.value

    def test_heterogeneous_literal_rejected(self):
        from repro.core.errors import HeterogeneousBagError
        with pytest.raises(HeterogeneousBagError):
            parse("{{'a', ['b', 1]}}")

    def test_empty_bag_literal(self):
        assert parse("{{}}") == Const(EMPTY_BAG)

    def test_ifp(self):
        from repro.machines import Ifp
        expr = parse("ifp[X: X u B; B]")
        assert isinstance(expr, Ifp)

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("B B")

    def test_missing_paren(self):
        with pytest.raises(ParseError):
            parse("P(B")

    def test_keyword_misuse(self):
        with pytest.raises(ParseError):
            parse("u(B)")


class TestRoundTrip:
    CASES = [
        "B (+) B",
        "(B - C) u (C - B)",
        "pi[1,4](sigma[t: alpha2(t) = alpha3(t)](B x B))",
        "delta(P(B))",
        "Pb({{'a', 'a'}})",
        "map[t: tau(alpha2(t), 'k')](B)",
        "eps(B) n eps(C)",
        "beta(tau('a', 'b'))",
        "sigma[t: alpha1(t) <= 2](B)",
        "ifp[X: X u pi[1](B); eps(pi[1](B))]",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_print_parse(self, text):
        first = parse(text)
        second = parse(to_text(first))
        assert first == second

    @pytest.mark.parametrize("text", CASES[:8])
    def test_semantics_preserved(self, text):
        B = Bag.of(Tup("a", "b", "a", "b"), Tup("b", "a", "b", "a"))
        # use a 4-ary bag so every projection/attribute in CASES is
        # well-typed where applicable; fall back when typing differs
        env = {"B": B, "C": B}
        first = parse(text)
        second = parse(to_text(first))
        try:
            expected = evaluate(first, env)
        except Exception:
            pytest.skip("case not typeable over the fixture bag")
        assert evaluate(second, env) == expected

    def test_internal_lambda_names_printable(self):
        """Derived expressions use '·'-prefixed parameters, which the
        printer renames into lexable names."""
        from repro.core.derived import parity_even_expr
        expr = parity_even_expr(var("R"))
        text = to_text(expr)
        reparsed = parse(text)
        R = Bag.of(Tup(1), Tup(2))
        assert evaluate(reparsed, R=R) == evaluate(expr, R=R)


class TestNestedRoundTrip:
    """Printer/parser round trips on expressions over *nested* bag
    types — the shapes the differential harness's ``surface`` backend
    exercises (nest/unnest, bag literals inside tuples, lambdas whose
    bodies build bags)."""

    NESTED_CASES = [
        "nest[2](B)",
        "unnest[2](nest[2](B))",
        "nest[1,2](B x B)",
        "map[t: tau(alpha1(t), beta(alpha2(t)))](B)",
        "sigma[t: alpha2(t) = {{'a', 'a'}}](N)",
        "{{['a', {{'b', 'b'}}], ['a', {{'b', 'b'}}]}}",
        "map[t: beta(tau(t))](delta(beta(beta('a'))))",
        "eps(nest[2](B)) (+) nest[2](B)",
    ]

    @pytest.mark.parametrize("text", NESTED_CASES)
    def test_parse_print_parse(self, text):
        first = parse(text)
        second = parse(to_text(first))
        assert first == second

    @pytest.mark.parametrize("text", NESTED_CASES)
    def test_nested_semantics_preserved(self, text):
        B = Bag.of(Tup("a", "b"), Tup("a", "b"), Tup("a", "c"))
        N = Bag.of(Tup("x", Bag.of("a", "a")),
                   Tup("y", Bag.of("b")))
        env = {"B": B, "N": N}
        first = parse(text)
        expected = evaluate(first, env)
        assert evaluate(parse(to_text(first)), env) == expected

    def test_generated_nested_cases_round_trip(self):
        """Every testkit-generated case (nested types, derived sugar)
        must survive ``parse(to_text(e))`` semantically."""
        from repro.core.eval import Evaluator
        from repro.testkit import generate_case
        for index in range(25):
            case = generate_case(31, index, fragment="balg3")
            reparsed = parse(to_text(case.expr))
            try:
                expected = Evaluator().run(case.expr, case.database)
            except Exception:
                continue  # ungoverned blow-up; harness covers these
            assert Evaluator().run(reparsed, case.database) == expected

    def test_renamed_nest_under_lambda_round_trips(self):
        """'·'-prefixed parameters force the printer's renaming
        substitution; a Nest under the renamed lambda must survive it
        (regression: substitute() used to rebuild Nest with no
        indices)."""
        from repro.core.expr import Lam, Map, Tupling
        from repro.core.nest import Nest
        inner = Nest(Const(Bag.of(Tup("a", "b"), Tup("a", "b"))), 1)
        expr = Map(Lam("·h", Tupling(var("·h"))),
                   Map(Lam("·g", inner), var("R")))
        R = Bag.of(Tup("z"))
        text = to_text(expr)
        assert evaluate(parse(text), R=R) == evaluate(expr, R=R)
