"""Edge-case tests for paths the mainline suites exercise lightly:
printer error surfaces, profile fitting degenerate inputs, evaluator
statistics, fragment reports, and error formatting."""

from __future__ import annotations

import pytest

from repro.complexity.profile import (
    ProfileRow, fit_exponent_of_two, fit_power_law,
)
from repro.core.bag import Bag, Tup
from repro.core.errors import BagTypeError, ParseError
from repro.core.eval import EvalStats, Evaluator
from repro.core.expr import Bagging, Const, Tupling, var
from repro.core.fragments import FragmentReport
from repro.core.types import U, flat_bag_type
from repro.surface import to_text


class TestPrinterErrorSurfaces:
    def test_quoted_atom_rejected(self):
        with pytest.raises(BagTypeError):
            to_text(Const("it's"))

    def test_boolean_atom_rejected(self):
        with pytest.raises(BagTypeError):
            to_text(Const(True))

    def test_exotic_atom_rejected(self):
        with pytest.raises(BagTypeError):
            to_text(Const(3.14))

    def test_int_atoms_fine(self):
        assert to_text(Const(3)) == "3"


class TestParseErrorFormatting:
    def test_position_shown(self):
        error = ParseError("boom", position=7, text="junk")
        assert "offset 7" in str(error)

    def test_position_optional(self):
        error = ParseError("boom")
        assert str(error) == "boom"


class TestProfileFitting:
    def test_power_law_needs_two_points(self):
        row = ProfileRow(input_size=10, peak_multiplicity=5,
                         peak_encoding_size=1, peak_distinct=1,
                         counter_bits=3)
        assert fit_power_law([row]) == 0.0

    def test_power_law_ignores_degenerate_rows(self):
        rows = [ProfileRow(1, 0, 0, 0, 1), ProfileRow(1, 0, 0, 0, 1)]
        assert fit_power_law(rows) == 0.0

    def test_exponent_fit_constant_series(self):
        rows = [ProfileRow(4, 8, 0, 0, 4), ProfileRow(4, 8, 0, 0, 4)]
        assert fit_exponent_of_two(rows) == 0.0

    def test_known_slope(self):
        rows = [ProfileRow(n, 2 ** n, 0, 0, n) for n in (2, 4, 6, 8)]
        assert abs(fit_exponent_of_two(rows) - 1.0) < 1e-9


class TestEvaluatorInternals:
    def test_stats_record_ignores_non_bags(self):
        stats = EvalStats()
        stats.record(var("B"), "an atom")
        assert stats.peak_encoding_size == 0
        assert stats.op_counts == {"Var": 1}

    def test_merged_with_keeps_maxima(self):
        one, two = EvalStats(), EvalStats()
        one.peak_encoding_size, two.peak_encoding_size = 10, 3
        one.peak_distinct, two.peak_distinct = 2, 9
        merged = one.merged_with(two)
        assert merged.peak_encoding_size == 10
        assert merged.peak_distinct == 9

    def test_object_level_evaluation(self):
        evaluator = Evaluator()
        result = evaluator.run(Bagging(Tupling(Const("a"))))
        assert result == Bag.of(Tup("a"))
        assert evaluator.stats.op_counts["Bagging"] == 1


class TestFragmentReportSurface:
    def test_balg3_flag(self):
        report = FragmentReport(result_type=flat_bag_type(1),
                                max_nesting=3, power_nesting=2)
        assert report.in_balg3
        assert not report.in_balg2
        assert report.fragment_name() == "BALG^3_2"

    def test_zero_nesting_display(self):
        report = FragmentReport(result_type=U, max_nesting=0,
                                power_nesting=0)
        assert report.fragment_name() == "BALG^1_0"


class TestErrorHierarchy:
    def test_all_library_errors_share_a_root(self):
        from repro.core import errors
        for name in ("ValueConstructionError", "HeterogeneousBagError",
                     "BagTypeError", "FragmentViolationError",
                     "UnboundVariableError", "EvaluationError",
                     "ResourceLimitError", "ParseError"):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_fragment_violation_is_a_type_error(self):
        from repro.core.errors import BagTypeError, FragmentViolationError
        assert issubclass(FragmentViolationError, BagTypeError)
