"""Unit and property tests for the value model (repro.core.bag)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bag import Bag, EMPTY_BAG, Tup, canonical_key, is_atom
from repro.core.errors import (
    HeterogeneousBagError, ValueConstructionError,
)
from tests.conftest import atom_bags, flat_bags, nested_bags


class TestTup:
    def test_arity_and_attributes(self):
        triple = Tup("a", "b", "c")
        assert triple.arity == 3
        assert triple.attribute(1) == "a"
        assert triple.attribute(3) == "c"

    def test_attribute_is_one_based(self):
        pair = Tup("x", "y")
        assert pair.attribute(1) == "x"
        assert pair[0] == "x"

    def test_attribute_out_of_range(self):
        with pytest.raises(IndexError):
            Tup("a").attribute(2)
        with pytest.raises(IndexError):
            Tup("a").attribute(0)

    def test_concat(self):
        assert Tup("a").concat(Tup("b", "c")) == Tup("a", "b", "c")

    def test_concat_rejects_non_tuple(self):
        with pytest.raises(ValueConstructionError):
            Tup("a").concat("b")  # type: ignore[arg-type]

    def test_equality_and_hash(self):
        assert Tup("a", "b") == Tup("a", "b")
        assert hash(Tup("a", "b")) == hash(Tup("a", "b"))
        assert Tup("a", "b") != Tup("b", "a")

    def test_nested_tuple_allowed(self):
        nested = Tup(Tup("a"), "b")
        assert nested.attribute(1) == Tup("a")

    def test_rejects_mutable_members(self):
        with pytest.raises(ValueConstructionError):
            Tup(["not", "allowed"])

    def test_iteration_and_len(self):
        assert list(Tup("a", "b")) == ["a", "b"]
        assert len(Tup("a", "b")) == 2


class TestBagConstruction:
    def test_counts_duplicates(self):
        bag = Bag(["a", "a", "b"])
        assert bag.multiplicity("a") == 2
        assert bag.multiplicity("b") == 1
        assert bag.multiplicity("c") == 0

    def test_from_counts(self):
        bag = Bag.from_counts({"a": 3, "b": 0})
        assert bag.multiplicity("a") == 3
        assert "b" not in bag

    def test_from_counts_rejects_negative(self):
        with pytest.raises(ValueConstructionError):
            Bag.from_counts({"a": -1})

    def test_from_counts_rejects_non_int(self):
        with pytest.raises(ValueConstructionError):
            Bag.from_counts({"a": 1.5})

    def test_single(self):
        bag = Bag.single(Tup("t"), 4)
        assert bag.n_belongs(Tup("t"), 4)
        assert bag.cardinality == 4

    def test_empty_bag(self):
        assert EMPTY_BAG.is_empty()
        assert EMPTY_BAG.cardinality == 0
        assert Bag() == EMPTY_BAG

    def test_rejects_mixed_shapes(self):
        with pytest.raises(HeterogeneousBagError):
            Bag(["atom", Tup("a")])

    def test_rejects_mixed_arities(self):
        with pytest.raises(HeterogeneousBagError):
            Bag([Tup("a"), Tup("a", "b")])

    def test_empty_inner_bag_is_compatible(self):
        # The empty bag is polymorphic: it can sit next to any bag.
        bag = Bag([Bag(), Bag(["a"])])
        assert bag.cardinality == 2

    def test_rejects_unhashable(self):
        with pytest.raises(ValueConstructionError):
            Bag([["list"]])

    def test_rejects_python_set_element(self):
        with pytest.raises(ValueConstructionError):
            Bag([{1, 2}])


class TestBagInterface:
    def test_n_belongs(self, sample_bag):
        assert sample_bag.n_belongs(Tup("a", "b"), 2)
        assert not sample_bag.n_belongs(Tup("a", "b"), 1)
        assert sample_bag.n_belongs(Tup("c", "c"), 0)

    def test_cardinality_counts_duplicates(self, sample_bag):
        assert sample_bag.cardinality == 3
        assert sample_bag.distinct_count == 2

    def test_is_set(self, sample_bag):
        assert not sample_bag.is_set()
        assert Bag.of(Tup("a")).is_set()
        assert EMPTY_BAG.is_set()

    def test_subbag_relation(self):
        small = Bag.from_counts({"a": 1, "b": 1})
        large = Bag.from_counts({"a": 2, "b": 1, "c": 5})
        assert small.is_subbag_of(large)
        assert not large.is_subbag_of(small)
        assert small <= large

    def test_subbag_reflexive(self, sample_bag):
        assert sample_bag.is_subbag_of(sample_bag)

    def test_elements_yields_duplicates(self):
        bag = Bag.from_counts({"a": 3})
        assert list(bag.elements()) == ["a", "a", "a"]
        assert len(list(bag)) == 3

    def test_distinct_iteration(self, sample_bag):
        assert set(sample_bag.distinct()) == {Tup("a", "b"), Tup("b", "a")}

    def test_an_element_on_empty_raises(self):
        with pytest.raises(ValueConstructionError):
            EMPTY_BAG.an_element()

    def test_support(self, sample_bag):
        assert sample_bag.support() == frozenset(
            {Tup("a", "b"), Tup("b", "a")})


class TestBagEqualityAndHashing:
    def test_order_insensitive(self):
        assert Bag(["a", "b", "a"]) == Bag(["b", "a", "a"])

    def test_multiplicity_sensitive(self):
        assert Bag(["a"]) != Bag(["a", "a"])

    def test_nested_bag_hashable(self):
        outer = Bag([Bag(["a"]), Bag(["a"]), Bag(["b"])])
        assert outer.multiplicity(Bag(["a"])) == 2

    def test_bags_as_dict_keys(self):
        index = {Bag(["a"]): 1, Bag(["a", "a"]): 2}
        assert index[Bag(["a", "a"])] == 2


class TestCanonicalKey:
    def test_atoms_before_tuples_before_bags(self):
        ordering = sorted([Bag(["a"]), Tup("a"), "a"], key=canonical_key)
        assert ordering == ["a", Tup("a"), Bag(["a"])]

    def test_integers_order_numerically(self):
        assert sorted([10, 2, 1], key=canonical_key) == [1, 2, 10]

    def test_tuples_order_lexicographically(self):
        pairs = [Tup("b", "a"), Tup("a", "b")]
        assert sorted(pairs, key=canonical_key) == [Tup("a", "b"),
                                                    Tup("b", "a")]

    def test_total_order_on_bags(self):
        bags = [Bag(["b"]), Bag(["a", "a"]), Bag(["a"])]
        keys = [canonical_key(bag) for bag in sorted(bags,
                                                     key=canonical_key)]
        assert keys == sorted(keys)


class TestIsAtom:
    def test_scalars_are_atoms(self):
        assert is_atom("a")
        assert is_atom(42)
        assert is_atom(None)

    def test_structures_are_not_atoms(self):
        assert not is_atom(Tup("a"))
        assert not is_atom(Bag(["a"]))


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------

class TestBagProperties:
    @given(flat_bags())
    def test_cardinality_is_sum_of_counts(self, bag):
        assert bag.cardinality == sum(count for _, count in bag.items())

    @given(flat_bags())
    def test_elements_roundtrip(self, bag):
        assert Bag(bag.elements()) == bag

    @given(atom_bags(), atom_bags())
    def test_equality_iff_same_counts(self, left, right):
        assert (left == right) == (left.counts() == right.counts())

    @given(nested_bags())
    def test_nested_bags_hash_consistent(self, bag):
        rebuilt = Bag(bag.elements())
        assert hash(rebuilt) == hash(bag)
        assert rebuilt == bag

    @given(atom_bags(), atom_bags())
    def test_subbag_antisymmetric_up_to_equality(self, left, right):
        if left.is_subbag_of(right) and right.is_subbag_of(left):
            assert left == right

    @given(flat_bags())
    def test_canonical_key_deterministic(self, bag):
        assert canonical_key(bag) == canonical_key(Bag(bag.elements()))
