"""Tests for the workload generators and the cardinality estimator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bag import Bag, Tup
from repro.core.derived import bag_as_int, sum_expr
from repro.core.errors import BagTypeError
from repro.core.eval import evaluate
from repro.core.expr import (
    Cartesian, Const, Dedup, Map, Lam, Powerbag, Powerset, Select,
    Tupling, Var, var,
)
from repro.optimizer.cardinality import (
    BagStats, DEFAULT_SELECTIVITY, estimate, stats_of,
)
from repro.workloads import (
    integer_bags, order_book, random_multigraph, random_relation,
    single_constant_family, star_graph_database, uniform_family,
)


class TestWorkloads:
    def test_single_constant_family(self):
        bag = single_constant_family(5)
        assert bag.cardinality == 5
        assert bag.distinct_count == 1
        assert single_constant_family(0).is_empty()
        with pytest.raises(BagTypeError):
            single_constant_family(-1)

    def test_uniform_family(self):
        bag = uniform_family(3, 4)
        assert bag.distinct_count == 3
        assert bag.cardinality == 12

    def test_random_relation_is_set(self):
        relation = random_relation(6, arity=2, seed=1)
        assert relation.is_set()
        assert all(t.arity == 2 for t in relation.distinct())

    def test_random_relation_reproducible(self):
        assert random_relation(8, seed=5) == random_relation(8, seed=5)
        assert random_relation(8, seed=5) != random_relation(8, seed=6)

    def test_random_multigraph_has_duplicates_eventually(self):
        graph = random_multigraph(2, 40, seed=3)
        assert graph.cardinality == 40
        assert graph.distinct_count < 40  # pigeonhole on 4 edges

    def test_order_book(self):
        orders = order_book(30, seed=2)
        assert orders.cardinality == 30
        assert all(t.arity == 2 for t in orders.distinct())

    def test_integer_bags_sum(self):
        encoded = integer_bags([2, 2, 3])
        total = evaluate(sum_expr(var("V")), V=encoded)
        assert bag_as_int(total) == 7

    def test_star_graph_database(self):
        database = star_graph_database(4)
        assert set(database) == {"G", "Gp", "alpha"}
        assert database["G"].cardinality == database[
            "Gp"].cardinality


class TestBagStats:
    def test_distinct_clamped(self):
        stats = BagStats(cardinality=3, distinct=10)
        assert stats.distinct == 3

    def test_negative_rejected(self):
        with pytest.raises(BagTypeError):
            BagStats(-1, 0)

    def test_average_multiplicity(self):
        assert BagStats(10, 5).average_multiplicity == 2
        assert BagStats(0, 0).average_multiplicity == 0

    def test_stats_of(self):
        bag = Bag.from_counts({Tup("a"): 3, Tup("b"): 1})
        stats = stats_of(bag)
        assert stats.cardinality == 4
        assert stats.distinct == 2


class TestEstimatorExactRules:
    """Rows the docstring marks 'exactly' must be exact."""

    def _stats(self, **bags):
        return {name: stats_of(bag) for name, bag in bags.items()}

    def test_product_exact(self):
        left = Bag.from_counts({Tup("a"): 2, Tup("b"): 1})
        right = Bag.from_counts({Tup("x"): 3})
        estimated = estimate(var("L") * var("R"),
                             self._stats(L=left, R=right))
        actual = evaluate(var("L") * var("R"), L=left, R=right)
        assert estimated.cardinality == actual.cardinality
        assert estimated.distinct == actual.distinct_count

    def test_map_preserves_cardinality(self):
        bag = Bag.from_counts({Tup("a", "b"): 4, Tup("b", "a"): 2})
        expr = Map(Lam("t", Tupling(Const("k"))), var("B"))
        estimated = estimate(expr, self._stats(B=bag))
        actual = evaluate(expr, B=bag)
        assert estimated.cardinality == actual.cardinality

    def test_dedup_exact(self):
        bag = Bag.from_counts({Tup("a"): 5, Tup("b"): 2})
        estimated = estimate(Dedup(var("B")), self._stats(B=bag))
        assert estimated.cardinality == 2
        assert estimated.distinct == 2

    def test_powerbag_total(self):
        bag = Bag.from_counts({Tup("a"): 3})
        estimated = estimate(Powerbag(var("B")), self._stats(B=bag))
        assert estimated.cardinality == 2 ** 3

    def test_additive_union_exact_cardinality(self):
        left = Bag.from_counts({Tup("a"): 2})
        right = Bag.from_counts({Tup("a"): 5})
        estimated = estimate(var("L") + var("R"),
                             self._stats(L=left, R=right))
        assert estimated.cardinality == 7


class TestEstimatorBounds:
    @given(st.integers(1, 12), st.integers(1, 12), st.integers(0, 99))
    @settings(max_examples=40, deadline=None)
    def test_bounds_dominate_measurements(self, n_left, n_right, seed):
        """On random workloads every estimated cardinality bounds the
        measured one for the bound-flavoured operators (selectivity
        pushed to 1 so selections are worst-case too)."""
        left = random_multigraph(3, n_left, seed=seed)
        right = random_multigraph(3, n_right, seed=seed + 1)
        statistics = {"L": stats_of(left), "R": stats_of(right)}
        battery = [
            var("L") + var("R"),
            var("L") - var("R"),
            var("L") | var("R"),
            var("L") & var("R"),
            var("L") * var("R"),
            Dedup(var("L")),
            Select(Lam("t", Const("x")), Lam("t", Const("x")),
                   var("L")),  # keeps everything: worst case
        ]
        for expr in battery:
            estimated = estimate(expr, statistics, selectivity=1.0)
            actual = evaluate(expr, L=left, R=right)
            assert actual.cardinality <= estimated.cardinality + 1e-9, \
                expr
            assert actual.distinct_count <= estimated.distinct + 1e-9, \
                expr

    def test_powerset_bound_dominates(self):
        bag = uniform_family(2, 3)
        wrapped = Bag([Tup(element) for element in bag.elements()])
        estimated = estimate(Powerset(var("B")),
                             {"B": stats_of(wrapped)})
        actual = evaluate(Powerset(var("B")), B=wrapped)
        assert actual.cardinality <= estimated.cardinality

    def test_selectivity_validation(self):
        with pytest.raises(BagTypeError):
            estimate(var("B"), {"B": BagStats(1, 1)}, selectivity=0)

    def test_unknown_relation(self):
        with pytest.raises(BagTypeError):
            estimate(var("ghost"), {})

    def test_extension_operator_rejected(self):
        from repro.machines import Ifp
        with pytest.raises(BagTypeError):
            estimate(Ifp("X", Var("X"), var("B")),
                     {"B": BagStats(1, 1)})
