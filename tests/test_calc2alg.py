"""Tests for the CALC1 -> algebra compiler (repro.relational.calc2alg):
the compiled expression must agree with the direct active-domain
evaluator on shared structures.

Convention: the compiled translation derives the active domain from
the relations, so test structures keep every atom inside some relation
(the standard active-domain setting).
"""

from __future__ import annotations

import pytest

from repro.core.bag import Bag, Tup
from repro.core.derived import is_nonempty
from repro.core.errors import BagTypeError
from repro.core.eval import evaluate
from repro.core.types import BagType, TupleType, U
from repro.games.structures import CoStructure, SET_OF_ATOMS, set_of
from repro.relational.calc import (
    And, Component, Contained, Eq, Exists, Forall, Implies, Member,
    Not, Or, Rel, TermConst, TermVar, satisfies,
)
from repro.relational.calc2alg import (
    active_atoms_expr, compile_calc, structure_to_database,
)

NODE = SET_OF_ATOMS


def _triangle() -> CoStructure:
    a, b, c = set_of(1), set_of(2), set_of(3)
    return CoStructure.build({1, 2, 3},
                             {"E": {(a, b), (b, c), (c, a)}})


def _path() -> CoStructure:
    a, b, c = set_of(1), set_of(2), set_of(3)
    return CoStructure.build({1, 2, 3}, {"E": {(a, b), (b, c)}})


TRIANGLE_SCHEMA = {"E": (NODE, NODE)}


def _check(sentence, structure, schema=TRIANGLE_SCHEMA) -> None:
    direct = satisfies(structure, sentence)
    compiled = compile_calc(sentence, schema)
    database = structure_to_database(structure)
    algebraic = is_nonempty(evaluate(compiled, database))
    assert algebraic == direct, sentence


class TestActiveAtoms:
    def test_atoms_from_set_attributes(self):
        expr = active_atoms_expr(TRIANGLE_SCHEMA)
        atoms = evaluate(expr, structure_to_database(_triangle()))
        assert atoms.support() == {Tup(1), Tup(2), Tup(3)}
        assert atoms.is_set()

    def test_atoms_from_flat_attributes(self):
        schema = {"R": (U, U)}
        database = {"R": Bag.of(Tup("a", "b"))}
        atoms = evaluate(active_atoms_expr(schema), database)
        assert atoms.support() == {Tup("a"), Tup("b")}

    def test_empty_schema_rejected(self):
        with pytest.raises(BagTypeError):
            active_atoms_expr({})


class TestSentences:
    def test_edge_exists(self):
        sentence = Exists("x", NODE, Exists(
            "y", NODE, Rel("E", [TermVar("x"), TermVar("y")])))
        _check(sentence, _triangle())
        _check(sentence, _path())

    def test_self_loop_absent(self):
        sentence = Exists("x", NODE,
                          Rel("E", [TermVar("x"), TermVar("x")]))
        _check(sentence, _triangle())

    def test_every_node_has_successor(self):
        # true on the triangle (a cycle), false on the path
        sentence = Forall("x", NODE, Implies(
            Exists("z", NODE, Or(
                Rel("E", [TermVar("x"), TermVar("z")]),
                Rel("E", [TermVar("z"), TermVar("x")]))),
            Exists("y", NODE, Rel("E", [TermVar("x"), TermVar("y")]))))
        assert satisfies(_triangle(), sentence)
        assert not satisfies(_path(), sentence)
        _check(sentence, _triangle())
        _check(sentence, _path())

    def test_membership(self):
        sentence = Exists("a", U, Exists(
            "x", NODE, And(
                Member(TermVar("a"), TermVar("x")),
                Exists("y", NODE,
                       Rel("E", [TermVar("x"), TermVar("y")])))))
        _check(sentence, _triangle())

    def test_containment(self):
        sentence = Forall("x", NODE, Contained(TermVar("x"),
                                               TermVar("x")))
        _check(sentence, _triangle())

    def test_equality_with_constant(self):
        sentence = Exists("x", NODE,
                          Eq(TermVar("x"), TermConst(set_of(1))))
        _check(sentence, _triangle())
        absent = Exists("x", NODE,
                        Eq(TermVar("x"), TermConst(set_of(9))))
        # note: 9 is outside the active domain on both sides
        _check(absent, _triangle())

    def test_negation(self):
        sentence = Not(Exists("x", NODE,
                              Rel("E", [TermVar("x"), TermVar("x")])))
        _check(sentence, _triangle())

    def test_quantifier_over_atoms(self):
        # every atom is a member of some node set
        sentence = Forall("a", U, Exists(
            "x", NODE, Member(TermVar("a"), TermVar("x"))))
        _check(sentence, _triangle())

    def test_tuple_quantifier_and_component(self):
        pair = Tup(1, 2)
        structure = CoStructure.build({1, 2}, {"P": {(pair,)}})
        schema = {"P": (TupleType((U, U)),)}
        sentence = Exists(
            "t", TupleType((U, U)),
            And(Rel("P", [TermVar("t")]),
                Eq(Component(TermVar("t"), 1), TermConst(1))))
        _check(sentence, structure, schema)

    def test_free_variables_rejected(self):
        open_formula = Rel("E", [TermVar("x"), TermVar("y")])
        with pytest.raises(BagTypeError):
            compile_calc(open_formula, TRIANGLE_SCHEMA)


class TestAgainstStarGraphs:
    def test_one_variable_sentences_agree_on_pair(self):
        """The E18 scenario in miniature: compiled sentences evaluate
        identically on G and G' (1-variable sentences cannot separate
        them, per the game result)."""
        from repro.games import build_star_graphs
        pair = build_star_graphs(4)
        schema = {"E": (NODE, NODE)}
        sentences = [
            Exists("x", NODE, Rel("E", [TermVar("x"), TermVar("x")])),
            Forall("x", NODE, Contained(TermVar("x"), TermVar("x"))),
        ]
        for sentence in sentences:
            compiled = compile_calc(sentence, schema)
            on_g = is_nonempty(evaluate(
                compiled, structure_to_database(pair.balanced),
                powerset_budget=1 << 16))
            on_gp = is_nonempty(evaluate(
                compiled, structure_to_database(pair.unbalanced),
                powerset_budget=1 << 16))
            assert on_g == on_gp
            assert on_g == satisfies(pair.balanced, sentence)
