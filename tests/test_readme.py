"""Documentation integrity: the README's Python blocks must run.

Extracts every fenced ``python`` block from README.md and executes it
in one shared namespace (the blocks build on each other, like a reader
following along).
"""

from __future__ import annotations

import pathlib
import re

README = pathlib.Path(__file__).parent.parent / "README.md"

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def test_readme_python_blocks_run():
    text = README.read_text(encoding="utf-8")
    blocks = _BLOCK_RE.findall(text)
    assert blocks, "the README lost its python examples"
    namespace: dict = {}
    for block in blocks:
        exec(compile(block, str(README), "exec"), namespace)
    # the quickstart's objects must have materialised
    assert "orders" in namespace
    assert namespace["orders"].cardinality == 3


def test_readme_mentions_every_experiment():
    text = README.read_text(encoding="utf-8")
    assert "EXPERIMENTS.md" in text
    assert "DESIGN.md" in text


def test_experiments_doc_lists_all_benches():
    experiments = (pathlib.Path(__file__).parent.parent
                   / "EXPERIMENTS.md").read_text(encoding="utf-8")
    bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
    for bench in bench_dir.glob("bench_e*.py"):
        assert bench.name in experiments, (
            f"{bench.name} missing from EXPERIMENTS.md")
