"""Tests for the Turing machine substrate, the IFP operator, and the
computation encodings (Theorems 6.1 / 6.6)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bag import Bag, EMPTY_BAG, Tup
from repro.core.errors import BagTypeError, EvaluationError
from repro.core.eval import evaluate
from repro.core.expr import Const, MaxUnion, Var, var
from repro.core.fragments import max_bag_nesting
from repro.machines import (
    CONFIG_TYPE, Ifp, NO_HEAD, TuringMachine, computation_bag,
    config_tuple, initial_config_bag, is_legal_accepting_computation,
    last_symbol_machine, layer, machine_step_expr, max_time,
    parity_machine, phi1_initial, phi2_moves, phi3_accepting,
    run_machine, simulate_via_ifp, transitive_closure_expr,
    unary_doubler,
)


class TestTuringMachine:
    def test_parity_machine(self):
        machine = parity_machine()
        for n in range(6):
            result = run_machine(machine, ["1"] * n)
            assert result.halted
            assert result.accepted == (n % 2 == 0)

    def test_doubler_rewrites_tape(self):
        result = run_machine(unary_doubler(), ["1", "1", "1"],
                             keep_trace=True)
        assert result.accepted
        assert result.final.tape[:3] == ("2", "2", "2")
        assert len(result.trace) == result.steps + 1

    def test_last_symbol(self):
        machine = last_symbol_machine()
        assert run_machine(machine, ["a", "b"]).accepted
        assert not run_machine(machine, ["b", "a"]).accepted
        assert not run_machine(machine, []).accepted

    def test_step_budget(self):
        result = run_machine(parity_machine(), ["1"] * 10, max_steps=3)
        assert not result.halted

    def test_invalid_input_symbol(self):
        with pytest.raises(EvaluationError):
            run_machine(parity_machine(), ["x"])

    def test_invalid_transition_rejected(self):
        with pytest.raises(EvaluationError):
            TuringMachine(
                states=("q", "accept", "reject"),
                alphabet=("1", "_"),
                transitions={("q", "1"): ("ghost", "1", "R")},
                initial_state="q", accept_state="accept",
                reject_state="reject")

    def test_invalid_move_rejected(self):
        with pytest.raises(EvaluationError):
            TuringMachine(
                states=("q", "accept", "reject"),
                alphabet=("1", "_"),
                transitions={("q", "1"): ("q", "1", "X")},
                initial_state="q", accept_state="accept",
                reject_state="reject")


class TestIfpOperator:
    def test_simple_closure(self):
        # IFP over "add element b once a is present" style body
        seed = Bag.of(Tup("a"))
        body = MaxUnion(Var("X"), Const(Bag.of(Tup("b"))))
        result = evaluate(Ifp("X", body, Const(seed)))
        assert result == Bag.of(Tup("a"), Tup("b"))

    def test_divergence_guard(self):
        # a body that keeps adding duplicates forever (additive union
        # grows multiplicities without bound)
        from repro.core.expr import AdditiveUnion
        body = AdditiveUnion(Var("X"), Var("X"))
        with pytest.raises(EvaluationError):
            evaluate(Ifp("X", body, Const(Bag.of(Tup("a"))),
                         max_iterations=5))

    def test_seed_must_be_bag(self):
        with pytest.raises(BagTypeError):
            evaluate(Ifp("X", Var("X"), Const("atom")))

    def test_type_inference(self):
        from repro.core.typecheck import infer_type
        from repro.core.types import flat_bag_type
        expr = transitive_closure_expr(var("G"))
        assert infer_type(expr, G=flat_bag_type(2)) == flat_bag_type(2)

    def test_transitive_closure_chain(self):
        graph = Bag.of(Tup(1, 2), Tup(2, 3), Tup(3, 4))
        closure = evaluate(transitive_closure_expr(var("G")), G=graph)
        expected = {(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)}
        assert {(t.attribute(1), t.attribute(2))
                for t in closure.distinct()} == expected
        assert closure.is_set()

    def test_transitive_closure_cycle(self):
        graph = Bag.of(Tup(1, 2), Tup(2, 1))
        closure = evaluate(transitive_closure_expr(var("G")), G=graph)
        assert {(t.attribute(1), t.attribute(2))
                for t in closure.distinct()} == {
                    (1, 2), (2, 1), (1, 1), (2, 2)}

    def test_transitive_closure_of_empty(self):
        assert evaluate(transitive_closure_expr(var("G")),
                        G=EMPTY_BAG) == EMPTY_BAG

    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)),
                    max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_transitive_closure_matches_networkx_style(self, edges):
        graph = Bag([Tup(a, b) for a, b in edges])
        closure = evaluate(transitive_closure_expr(var("G")), G=graph)
        # reference: iterative closure over python sets
        reachable = set(edges)
        changed = True
        while changed:
            changed = False
            for (a, b) in list(reachable):
                for (c, d) in list(reachable):
                    if b == c and (a, d) not in reachable:
                        reachable.add((a, d))
                        changed = True
        assert {(t.attribute(1), t.attribute(2))
                for t in closure.distinct()} == reachable


class TestTheorem66Simulation:
    """The algebra-driven Turing machine (IFP) agrees with the native
    simulator on acceptance, step count, and final tape."""

    @pytest.mark.parametrize("word", ["", "1", "11", "111"])
    def test_parity(self, word):
        machine = parity_machine()
        cells = len(word) + 2
        native = run_machine(machine, list(word), tape_cells=cells)
        algebra = simulate_via_ifp(machine, list(word),
                                   max_steps=len(word) + 2,
                                   tape_cells=cells)
        assert algebra.accepted == native.accepted
        assert algebra.steps == native.steps
        assert algebra.final_tape == native.final.tape

    def test_doubler_tape(self):
        algebra = simulate_via_ifp(unary_doubler(), ["1", "1"],
                                   max_steps=4, tape_cells=4)
        assert algebra.accepted
        assert algebra.final_tape[:2] == ("2", "2")

    @pytest.mark.parametrize("word,expected", [
        (["a", "b"], True), (["b", "a"], False), (["b", "b"], True),
    ])
    def test_left_moves(self, word, expected):
        algebra = simulate_via_ifp(last_symbol_machine(), word,
                                   max_steps=6, tape_cells=5)
        assert algebra.accepted == expected

    def test_config_bag_stays_in_nesting_two(self):
        """Theorem 6.6 needs only BALG^2 + IFP: the configuration type
        has bag nesting 2 and the step formula stays within it."""
        machine = parity_machine()
        expr = machine_step_expr(machine, "X")
        assert max_bag_nesting(expr, X=CONFIG_TYPE) == 2

    def test_initial_config(self):
        machine = parity_machine()
        seed = initial_config_bag(machine, ["1"], 3)
        assert seed.cardinality == 3
        heads = [t for t in seed.distinct() if t.attribute(4) != NO_HEAD]
        assert len(heads) == 1
        assert heads[0].attribute(4) == "even"
        assert heads[0].attribute(2).cardinality == 1


class TestTheorem61Encoding:
    def test_genuine_computation_passes_all_selections(self):
        machine = parity_machine()
        word = ["1", "1"]
        computation = computation_bag(machine, word, max_steps=5,
                                      tape_cells=4)
        assert phi1_initial(machine, computation, word)
        assert phi2_moves(machine, computation)
        assert phi3_accepting(machine, computation)
        assert is_legal_accepting_computation(machine, computation, word)

    def test_rejecting_run_fails_phi3_only(self):
        machine = parity_machine()
        word = ["1"]
        computation = computation_bag(machine, word, max_steps=5,
                                      tape_cells=3)
        assert phi1_initial(machine, computation, word)
        assert phi2_moves(machine, computation)
        assert not phi3_accepting(machine, computation)

    def test_wrong_input_fails_phi1(self):
        machine = parity_machine()
        computation = computation_bag(machine, ["1", "1"], max_steps=5,
                                      tape_cells=4)
        assert not phi1_initial(machine, computation, ["1"])

    def test_mutated_cell_fails_phi2(self):
        machine = parity_machine()
        word = ["1", "1"]
        computation = computation_bag(machine, word, max_steps=5,
                                      tape_cells=4)
        # forge the symbol of one mid-computation cell
        victim = next(t for t in computation.distinct()
                      if t.attribute(1).cardinality == 1
                      and t.attribute(2).cardinality == 2)
        forged = Tup(victim.attribute(1), victim.attribute(2),
                     "_" if victim.attribute(3) == "1" else "1",
                     victim.attribute(4))
        mutated = Bag([t for t in computation.distinct()
                       if t != victim] + [forged])
        assert not phi2_moves(machine, mutated)
        assert not is_legal_accepting_computation(machine, mutated, word)

    def test_missing_layer_fails(self):
        machine = parity_machine()
        word = ["1", "1"]
        computation = computation_bag(machine, word, max_steps=5,
                                      tape_cells=4)
        pruned = Bag([t for t in computation.distinct()
                      if t.attribute(1).cardinality != 1])
        assert not is_legal_accepting_computation(machine, pruned, word)

    def test_forged_accept_state_fails_phi2(self):
        machine = parity_machine()
        word = ["1"]
        computation = computation_bag(machine, word, max_steps=5,
                                      tape_cells=3)
        horizon = max_time(computation)
        forged_cells = []
        for entry in computation.distinct():
            if (entry.attribute(1).cardinality == horizon
                    and entry.attribute(4) != NO_HEAD):
                forged_cells.append(Tup(entry.attribute(1),
                                        entry.attribute(2),
                                        entry.attribute(3),
                                        machine.accept_state))
            else:
                forged_cells.append(entry)
        forged = Bag(forged_cells)
        assert phi3_accepting(machine, forged)
        assert not phi2_moves(machine, forged)

    def test_layer_helpers(self):
        machine = parity_machine()
        computation = computation_bag(machine, ["1"], max_steps=3,
                                      tape_cells=3)
        assert max_time(computation) == run_machine(
            machine, ["1"], tape_cells=3).steps
        first = layer(computation, 0)
        assert [cell.attribute(2).cardinality for cell in first] == \
            [1, 2, 3]

    def test_empty_and_duplicated_bags_rejected(self):
        machine = parity_machine()
        assert not is_legal_accepting_computation(machine, Bag(), [])
        genuine = computation_bag(machine, [], max_steps=2,
                                  tape_cells=2)
        duplicated = Bag.from_counts(
            {entry: 2 for entry in genuine.distinct()})
        assert not is_legal_accepting_computation(machine, duplicated,
                                                  [])


class TestBinarySuccessor:
    """The binary-successor machine: carry-chain rewriting, validated
    natively and through the Theorem 6.6 simulation."""

    @pytest.mark.parametrize("value", [0, 1, 2, 3, 5, 7, 12])
    def test_increments(self, value):
        from repro.machines import binary_successor
        machine = binary_successor()
        bits = [str((value >> i) & 1) for i in range(max(1, value.bit_length()))]
        result = run_machine(machine, bits, tape_cells=len(bits) + 2)
        assert result.accepted
        successor = 0
        for position, symbol in enumerate(result.final.tape):
            if symbol == "1":
                successor |= 1 << position
        assert successor == value + 1

    @pytest.mark.parametrize("value", [0, 3, 5])
    def test_ifp_simulation_matches(self, value):
        from repro.machines import binary_successor
        machine = binary_successor()
        bits = [str((value >> i) & 1) for i in range(max(1, value.bit_length()))]
        cells = len(bits) + 2
        native = run_machine(machine, bits, tape_cells=cells)
        algebra = simulate_via_ifp(machine, bits,
                                   max_steps=len(bits) + 2,
                                   tape_cells=cells)
        assert algebra.final_tape == native.final.tape
        assert algebra.steps == native.steps

    def test_computation_bag_checkers(self):
        from repro.machines import binary_successor
        machine = binary_successor()
        word = ["1", "1"]
        computation = computation_bag(machine, word, max_steps=4,
                                      tape_cells=4)
        assert is_legal_accepting_computation(machine, computation, word)


class TestLiteralTheorem61:
    """The construction run literally: enumerate the powerset of a
    (tiny) candidate space and select with phi1^phi2^phi3."""

    def test_unique_survivor_on_accepting_input(self):
        from repro.machines.encode import (
            candidate_space, select_legal_computations,
        )
        machine = parity_machine()
        restricted = dict(symbols=["_"], states=["even", "accept", NO_HEAD])
        space = candidate_space(machine, [], 1, 1, **restricted)
        assert len(space) == 6  # 2 times x 1 cell x 1 symbol x 3 states
        survivors = select_legal_computations(machine, [], 1, 1,
                                              **restricted)
        genuine = computation_bag(machine, [], max_steps=1,
                                  tape_cells=1)
        assert survivors == [genuine]

    def test_no_survivor_without_accepting_tuples(self):
        from repro.machines.encode import select_legal_computations
        machine = parity_machine()
        # a candidate space with no accept-state tuples cannot contain
        # an accepting computation: the selection keeps nothing
        survivors = select_legal_computations(
            machine, [], 1, 1,
            symbols=["_"], states=["even", "reject", NO_HEAD])
        assert survivors == []

    def test_budget_guard(self):
        from repro.core.errors import EvaluationError
        from repro.machines.encode import select_legal_computations
        machine = parity_machine()
        with pytest.raises(EvaluationError):
            select_legal_computations(machine, [], 3, 3, budget=100)
