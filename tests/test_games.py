"""Tests for the GV90 game machinery and the Fig. 1 construction
(repro.games)."""

from __future__ import annotations

import pytest

from repro.core.bag import Bag, Tup
from repro.core.derived import in_degree_greater_expr, is_nonempty
from repro.core.errors import BagTypeError, ResourceLimitError
from repro.core.eval import evaluate
from repro.core.expr import var
from repro.core.types import BagType, TupleType, U
from repro.games import (
    CoStructure, SET_OF_ATOMS, build_star_graphs, center_node,
    dom, dom_size, duplicator_wins, edge_bag, in_out_families,
    partial_isomorphism, satisfies_property_one, set_of,
)


class TestDom:
    def test_atoms(self):
        assert set(dom(U, {1, 2, 3})) == {1, 2, 3}

    def test_tuples(self):
        pairs = dom(TupleType((U, U)), {1, 2})
        assert len(pairs) == 4
        assert Tup(1, 2) in pairs

    def test_sets(self):
        sets = dom(SET_OF_ATOMS, {1, 2})
        assert len(sets) == 4
        assert set_of(1, 2) in sets
        assert Bag() in sets

    def test_dom_size_matches(self):
        for object_type in (U, TupleType((U, U)), SET_OF_ATOMS,
                            BagType(TupleType((U, U)))):
            assert dom_size(object_type, 3) == len(dom(object_type,
                                                       {1, 2, 3}))

    def test_budget(self):
        with pytest.raises(ResourceLimitError):
            dom(BagType(TupleType((U, U))), set(range(6)), budget=100)


class TestInOutFamilies:
    @pytest.mark.parametrize("n", [4, 6, 8, 10, 12])
    def test_property_one(self, n):
        ins, outs = in_out_families(n)
        assert satisfies_property_one(ins, n)
        assert satisfies_property_one(outs, n)

    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_shape(self, n):
        ins, outs = in_out_families(n)
        assert len(ins) == len(outs) == 2 ** (n // 2 - 1)
        assert all(subset.cardinality == n // 2
                   for subset in ins + outs)
        assert not set(ins) & set(outs)

    def test_odd_n_rejected(self):
        with pytest.raises(BagTypeError):
            in_out_families(5)
        with pytest.raises(BagTypeError):
            in_out_families(2)

    def test_property_one_detects_violation(self):
        assert not satisfies_property_one([set_of(1, 2)], 4)
        assert not satisfies_property_one([], 4)


class TestStarGraphs:
    def test_degrees(self):
        pair = build_star_graphs(6)
        alpha = pair.center

        def degrees(structure):
            edges = structure.relation("E")
            in_degree = sum(1 for _, dst in edges if dst == alpha)
            out_degree = sum(1 for src, _ in edges if src == alpha)
            return in_degree, out_degree

        balanced_in, balanced_out = degrees(pair.balanced)
        assert balanced_in == balanced_out
        unbalanced_in, unbalanced_out = degrees(pair.unbalanced)
        assert unbalanced_in == unbalanced_out + 2

    def test_same_node_universe(self):
        pair = build_star_graphs(4)
        assert (pair.balanced.all_objects()
                == pair.unbalanced.all_objects())

    def test_center(self):
        assert center_node(4) == set_of(1, 2, 3, 4)

    def test_balg2_query_distinguishes(self):
        """Theorem 5.2's positive half: the in-degree query IS
        expressible in BALG^2 and separates G from G'."""
        for n in (4, 6):
            pair = build_star_graphs(n)
            query = in_degree_greater_expr(var("G"), pair.center)
            assert not is_nonempty(
                evaluate(query, G=edge_bag(pair.balanced)))
            assert is_nonempty(
                evaluate(query, G=edge_bag(pair.unbalanced)))

    def test_edge_bag_is_nested_type(self):
        from repro.core.types import type_of
        pair = build_star_graphs(4)
        bag_type = type_of(edge_bag(pair.balanced))
        assert bag_type.bag_nesting() == 2  # BALG^2 territory


class TestPartialIsomorphism:
    def _structures(self):
        a, b = set_of(1), set_of(2)
        left = CoStructure.build({1, 2}, {"E": {(a, b)}})
        right = CoStructure.build({1, 2}, {"E": {(b, a)}})
        return left, right, a, b

    def test_empty_position_is_iso(self):
        left, right, _, _ = self._structures()
        assert partial_isomorphism(left, right, [])

    def test_respects_relations(self):
        left, right, a, b = self._structures()
        # mapping a->a, b->b breaks E: (a,b) in left, not in right
        assert not partial_isomorphism(left, right, [(a, a), (b, b)])
        # mapping a->b, b->a restores it
        assert partial_isomorphism(left, right, [(a, b), (b, a)])

    def test_respects_membership(self):
        left, right, a, b = self._structures()
        # 1 in a but 1 not in b: pairing (1,1) with (a,b) breaks it
        assert not partial_isomorphism(left, right, [(1, 1), (a, b)])
        assert partial_isomorphism(left, right, [(1, 2), (a, b)])

    def test_injective(self):
        left, right, a, b = self._structures()
        assert not partial_isomorphism(left, right, [(a, b), (b, b)])

    def test_type_preservation(self):
        left, right, a, _ = self._structures()
        assert not partial_isomorphism(left, right, [(a, 1)])

    def test_tuple_components_closed_over(self):
        pair_left = Tup(1, 2)
        pair_right = Tup(3, 3)
        left = CoStructure.build({1, 2}, {"P": {(pair_left,)}})
        right = CoStructure.build({3, 4}, {"P": {(pair_right,)}})
        # components 1,2 map to 3,3 — not injective, must fail
        assert not partial_isomorphism(left, right,
                                       [(pair_left, pair_right)])


class TestGame:
    def test_lemma54_instances(self):
        """Duplicator wins the k-move game on G_{k,T}, G'_{k,T} for
        n > 2k (the lemma's bound)."""
        pair = build_star_graphs(4)
        result = duplicator_wins(pair.balanced, pair.unbalanced,
                                 [U, SET_OF_ATOMS], 1)
        assert result.duplicator_wins

    def test_spoiler_wins_against_blatantly_different(self):
        pair = build_star_graphs(4)
        empty = CoStructure.build(pair.balanced.atoms, {"E": set()})
        result = duplicator_wins(pair.balanced, empty,
                                 [U, SET_OF_ATOMS], 2)
        assert not result.duplicator_wins

    def test_zero_moves_always_duplicator(self):
        pair = build_star_graphs(4)
        empty = CoStructure.build(pair.balanced.atoms, {"E": set()})
        result = duplicator_wins(pair.balanced, empty,
                                 [U, SET_OF_ATOMS], 0)
        assert result.duplicator_wins

    def test_atom_only_game(self):
        # On pure atom structures the game reduces to the classical EF
        # game; equal-size empty structures are 1-equivalent.
        left = CoStructure.build({1, 2}, {})
        right = CoStructure.build({3, 4}, {})
        result = duplicator_wins(left, right, [U], 2)
        assert result.duplicator_wins

    def test_atom_count_difference_detected_at_depth(self):
        # |A|=1 vs |A|=2: spoiler wins with 2 moves (pigeonhole).
        left = CoStructure.build({1}, {})
        right = CoStructure.build({3, 4}, {})
        assert duplicator_wins(left, right, [U], 1).duplicator_wins
        assert not duplicator_wins(left, right, [U], 2).duplicator_wins

    @pytest.mark.slow
    def test_lemma54_two_moves(self):
        """k = 2 on n = 4: the lemma's bound n > 2k fails (4 = 2k), but
        measurement shows the duplicator still wins this instance."""
        pair = build_star_graphs(4)
        result = duplicator_wins(pair.balanced, pair.unbalanced,
                                 [U, SET_OF_ATOMS], 2)
        assert result.duplicator_wins


class TestSpoilerWitness:
    def test_witness_against_empty_graph(self):
        from repro.games import winning_spoiler_line
        from repro.games.structures import CoStructure
        pair = build_star_graphs(4)
        empty = CoStructure.build(pair.balanced.atoms, {"E": set()})
        line = winning_spoiler_line(pair.balanced, empty,
                                    [U, SET_OF_ATOMS], 2)
        assert line is not None
        side, pick = line[0]
        # the winning first pick is an endpoint of an edge the empty
        # graph cannot mirror
        assert side == "left"
        endpoints = {obj for edge in pair.balanced.relation("E")
                     for obj in edge}
        assert pick in endpoints

    def test_no_witness_when_duplicator_wins(self):
        from repro.games import winning_spoiler_line
        pair = build_star_graphs(4)
        assert winning_spoiler_line(pair.balanced, pair.unbalanced,
                                    [U, SET_OF_ATOMS], 1) is None

    def test_witness_for_atom_count_difference(self):
        from repro.games import winning_spoiler_line
        from repro.games.structures import CoStructure
        left = CoStructure.build({1}, {})
        right = CoStructure.build({3, 4}, {})
        line = winning_spoiler_line(left, right, [U], 2)
        assert line is not None
        # pigeonhole: either side works — picking the lone left atom
        # forces the duplicator to reuse it against two right atoms
        assert line[0][0] in ("left", "right")
