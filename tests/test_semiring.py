"""The semiring-generalized multiplicity core.

Five concerns, one file:

* the algebraic contract of every shipped instance (axioms, natural
  order, count codec round-trips);
* cross-engine agreement — tree oracle, physical, codegen, and the
  morsel-parallel executor must compute the same annotated bag under
  every semiring, with the process backend exercising the CM02 shard
  codec end to end;
* the semiring-parameterized metamorphic law catalogue
  (:func:`repro.testkit.metamorphic.laws_for_semiring`) on seeded
  generated cases;
* the A ≡ B tri-equivalence: Bool-engine, relational-algebra, and
  delta-applied-to-bags backends agree on set semantics;
* plumbing: plan-cache isolation by semiring tag, the ``:explain``
  footer, CLI/REPL selection, and the N fast path's structural purity
  (no ``_sr`` in emitted codegen source).
"""

from __future__ import annotations

import io
import pickle
import random

import pytest

from repro.cli import Session
from repro.core.bag import Bag, Tup
from repro.core.eval import evaluate as tree_evaluate
from repro.core.expr import (
    AdditiveUnion, Dedup, Intersection, MaxUnion, Subtraction, var,
)
from repro.core.semiring import (
    BOOL, NAT, PROVENANCE, TROPICAL, Prov, Trop,
    known_semirings, resolve_semiring, semiring_name,
)
from repro.core.typecheck import infer_type
from repro.engine import (
    PlanCache, evaluate as engine_evaluate, explain_physical, plan_for,
)
from repro.engine.parallel.codec import decode_shard, encode_shard
from repro.planner import PassConfig
from repro.relational import deep_dedup
from repro.testkit import Harness, generate_case
from repro.testkit.differential import SET_BACKENDS, delta_commutes
from repro.testkit.metamorphic import (
    LAWS, check_laws, laws_for_semiring,
)

INSTANCES = (NAT, BOOL, TROPICAL, PROVENANCE)
SPECS = ("nat", "bool", "tropical", "provenance")

R = Bag({Tup("a", "b"): 3, Tup("c", "d"): 1})
S = Bag({Tup("a", "b"): 1, Tup("e", "f"): 2})
EXPR = AdditiveUnion(
    Dedup(Subtraction(AdditiveUnion(var("R"), var("R")), var("S"))),
    Intersection(var("S"), var("R")))
DB = {"R": R, "S": S}


def _samples(sr):
    """A few domain values including zero and one."""
    if sr is NAT:
        return (0, 1, 2, 5)
    if sr is BOOL:
        return (0, 1)
    if sr is TROPICAL:
        return (sr.zero, sr.one, Trop(2.5), Trop(7.0))
    return (sr.zero, sr.one, Prov({("x",): 2}),
            Prov({("x",): 1, ("y", "y"): 3}))


class TestAxioms:
    @pytest.mark.parametrize("sr", INSTANCES, ids=lambda s: s.name)
    def test_monoid_identities(self, sr):
        for a in _samples(sr):
            assert sr.add(a, sr.zero) == a
            assert sr.add(sr.zero, a) == a
            assert sr.mul(a, sr.one) == a
            assert sr.mul(sr.one, a) == a
            assert sr.mul(a, sr.zero) == sr.zero
            assert sr.is_zero(sr.mul(a, sr.zero))

    @pytest.mark.parametrize("sr", INSTANCES, ids=lambda s: s.name)
    def test_commutativity_and_distributivity(self, sr):
        values = _samples(sr)
        for a in values:
            for b in values:
                assert sr.add(a, b) == sr.add(b, a)
                assert sr.mul(a, b) == sr.mul(b, a)
                for c in values:
                    assert sr.mul(a, sr.add(b, c)) == \
                        sr.add(sr.mul(a, b), sr.mul(a, c))

    @pytest.mark.parametrize("sr", INSTANCES, ids=lambda s: s.name)
    def test_monus_residuates_the_natural_order(self, sr):
        values = _samples(sr)
        for a in values:
            assert sr.is_zero(sr.monus(a, a))
            assert sr.monus(a, sr.zero) == a
            for b in values:
                # a <= b  iff  a monus b = 0 (natural order)
                assert sr.leq(a, b) == sr.is_zero(sr.monus(a, b))

    @pytest.mark.parametrize("sr", INSTANCES, ids=lambda s: s.name)
    def test_idempotency_flag_matches_addition(self, sr):
        for a in _samples(sr):
            if sr.idempotent_add:
                assert sr.add(a, a) == a
            assert sr.scale(a, 2) == sr.add(a, a)

    def test_from_int_collapses_under_idempotency(self):
        assert BOOL.from_int(7) == BOOL.one
        assert TROPICAL.from_int(7) == TROPICAL.one
        assert PROVENANCE.from_int(7) == Prov.const(7)
        assert NAT.from_int(7) == 7

    @pytest.mark.parametrize("sr", INSTANCES, ids=lambda s: s.name)
    def test_count_codec_round_trip(self, sr):
        for a in _samples(sr):
            assert sr.decode_count(sr.encode_count(a)) == a

    @pytest.mark.parametrize("sr", (TROPICAL, PROVENANCE),
                             ids=lambda s: s.name)
    def test_annotations_pickle(self, sr):
        for a in _samples(sr):
            assert pickle.loads(pickle.dumps(a)) == a

    @pytest.mark.parametrize("sr", (BOOL, TROPICAL, PROVENANCE),
                             ids=lambda s: s.name)
    def test_adapt_bag_is_idempotent(self, sr):
        """A result bag re-entering as a binding (the REPL stores
        evaluated bags in its environment) must not be re-annotated."""
        adapted = sr.adapt_bag(R, "R")
        assert sr.adapt_bag(adapted, "R") == adapted

    @pytest.mark.parametrize("source, target", [
        (TROPICAL, PROVENANCE), (PROVENANCE, TROPICAL),
        (TROPICAL, BOOL), (PROVENANCE, BOOL),
    ], ids=lambda s: getattr(s, "name", s))
    def test_cross_domain_adaptation_is_governed(self, source, target):
        """A bag annotated under one semiring fed to another must raise
        the governed error family, not crash or silently reinterpret."""
        from repro.core.errors import BagTypeError
        foreign = source.adapt_bag(R, "R")
        with pytest.raises(BagTypeError, match="another semiring"):
            target.adapt_bag(foreign, "R")

    def test_cross_domain_binding_survives_repl(self):
        """The REPL sequence that stores a tropical-annotated binding
        and re-uses it under provenance prints a governed error and the
        session keeps going."""
        out = io.StringIO()
        session = Session(out=out)  # nat: B keeps plain int counts
        session.handle("B = {{'a', 'a', 'b'}}")
        session.handle(":semiring tropical")
        session.handle("C = eps(B)")
        session.handle(":semiring provenance")
        session.handle("C (+) C")
        assert "error:" in out.getvalue()
        assert "another semiring" in out.getvalue()
        # the session survives: an N-count binding still adapts fine
        out.truncate(0), out.seek(0)
        session.handle("B (+) B")
        assert "error:" not in out.getvalue()


class TestRegistry:
    def test_known_semirings(self):
        assert known_semirings() == SPECS

    def test_nat_resolves_to_fast_path(self):
        assert resolve_semiring(None) is None
        assert resolve_semiring("nat") is None
        assert semiring_name(None) == "nat"

    def test_named_instances_resolve(self):
        assert resolve_semiring("bool") is BOOL
        assert resolve_semiring("tropical") is TROPICAL
        assert resolve_semiring("provenance") is PROVENANCE
        assert resolve_semiring(BOOL) is BOOL

    def test_unknown_name_raises(self):
        with pytest.raises(Exception):
            resolve_semiring("viterbi")


class TestCrossEngineAgreement:
    """Every engine computes the same annotated bag, per semiring."""

    @pytest.mark.parametrize("spec", SPECS)
    @pytest.mark.parametrize("engine",
                             ("physical", "codegen", "parallel"))
    def test_fixed_query(self, spec, engine):
        expected = tree_evaluate(EXPR, DB, semiring=spec)
        actual = engine_evaluate(
            EXPR, DB, engine=engine, cache=None, semiring=spec)
        assert actual == expected

    @pytest.mark.parametrize("spec", SPECS)
    def test_seeded_generated_cases(self, spec):
        for seed in range(103, 109):
            case = generate_case(seed=seed, fragment="balg1", size=7)
            expected = tree_evaluate(case.expr, case.database,
                                     semiring=spec)
            for engine in ("physical", "codegen"):
                actual = engine_evaluate(
                    case.expr, case.database, engine=engine,
                    cache=None, powerset_budget=512, semiring=spec)
                assert actual == expected, (seed, engine)

    def test_nat_spec_is_bit_identical_to_default(self):
        for seed in range(41, 45):
            case = generate_case(seed=seed, fragment="balg1", size=7)
            default = engine_evaluate(case.expr, case.database,
                                      cache=None, powerset_budget=512)
            tagged = engine_evaluate(case.expr, case.database,
                                     cache=None, powerset_budget=512,
                                     semiring="nat")
            assert default == tagged


class TestParallelSemiring:
    """Forced multi-shard execution: shard merge and the CM02 codec."""

    @pytest.mark.parametrize("spec", SPECS)
    def test_thread_backend_multi_shard(self, spec):
        expected = tree_evaluate(EXPR, DB, semiring=spec)
        actual = engine_evaluate(
            EXPR, DB, engine="parallel", workers=2,
            parallel_backend="thread", parallel_threshold=0,
            min_morsel_rows=1, cache=None, semiring=spec)
        assert actual == expected

    @pytest.mark.parametrize("spec", ("tropical", "provenance"))
    def test_process_backend_ships_annotations(self, spec):
        expected = tree_evaluate(EXPR, DB, semiring=spec)
        actual = engine_evaluate(
            EXPR, DB, engine="parallel", workers=2,
            parallel_backend="process", parallel_threshold=0,
            min_morsel_rows=1, cache=None, semiring=spec)
        assert actual == expected


class TestShardCodec:
    def test_int_shards_keep_the_varint_format(self):
        blob = encode_shard({Tup("a", 1): 3, Tup("b", 2): 1})
        assert blob[:4] == b"CM01"
        assert decode_shard(blob) == {Tup("a", 1): 3, Tup("b", 2): 1}

    @pytest.mark.parametrize(
        "counts",
        [{Tup("a",): Trop(2.0), Tup("b",): Trop(0.0)},
         {Tup("a",): Prov({("x",): 2}), Tup("b",): Prov.const(1)}],
        ids=("tropical", "provenance"))
    def test_annotated_shards_use_v2_and_round_trip(self, counts):
        blob = encode_shard(counts)
        assert blob[:4] == b"CM02"
        assert decode_shard(blob) == counts

    def test_nested_bag_with_annotated_inner_counts(self):
        inner = Bag({Tup("p",): Trop(1.5)})
        counts = {Tup(inner, "tag"): Trop(0.5)}
        blob = encode_shard(counts)
        assert blob[:4] == b"CM02"
        assert decode_shard(blob) == counts


class TestMetamorphicLaws:
    def test_nat_keeps_the_full_catalogue(self):
        assert laws_for_semiring(None) is LAWS
        assert laws_for_semiring(resolve_semiring("nat")) is LAWS

    def test_gating_per_instance(self):
        names = {sr.name: [n for n, _, _ in laws_for_semiring(sr)]
                 for sr in (BOOL, TROPICAL, PROVENANCE)}
        # Idempotent instances lose cancellation, gain idempotency.
        assert "union-monus" not in names["bool"]
        assert "union-monus" not in names["tropical"]
        assert "union-monus" in names["provenance"]
        assert "union-idempotent" in names["bool"]
        assert "union-idempotent" in names["tropical"]
        assert "union-idempotent" not in names["provenance"]
        # Meet-via-monus fails only in Tropical.
        assert "inter-via-monus" in names["bool"]
        assert "inter-via-monus" not in names["tropical"]
        # Counting laws are N-only.
        for selected in names.values():
            assert "derived-dedup" not in selected
            assert "count-consistency" not in selected
            # The universal core survives everywhere.
            for core in ("dedup-idempotent", "delta-beta",
                         "monus-self", "max-via-monus"):
                assert core in selected

    @pytest.mark.parametrize("spec",
                             ("bool", "tropical", "provenance"))
    def test_laws_hold_on_seeded_cases(self, spec):
        sr = resolve_semiring(spec)
        failures = []
        for seed in range(211, 219):
            case = generate_case(seed=seed, fragment="balg1", size=7)
            typ = infer_type(case.expr, case.schema)

            def run(e):
                return tree_evaluate(e, case.database,
                                     powerset_budget=512,
                                     semiring=spec)

            value = run(case.expr)
            for res in check_laws(case, typ, value, run,
                                  laws=laws_for_semiring(sr)):
                if res.status == "failed":
                    failures.append((seed, res.name, res.detail))
        assert not failures

    def test_union_idempotent_law_is_false_over_nat(self):
        """The new law must never leak into the N catalogue: over N,
        e (+) e doubles every multiplicity."""
        assert all(name != "union-idempotent" for name, _, _ in LAWS)
        doubled = tree_evaluate(AdditiveUnion(var("R"), var("R")),
                                {"R": R})
        assert doubled != R


class TestTriEquivalence:
    """A ≡ B on the engine: three independent set-semantics backends
    (Bool-engine, relational algebra, delta-of-the-bag-result) agree
    with each other on every case where delta commutes."""

    def test_set_backends_registered(self):
        assert SET_BACKENDS == {"engine-boolean", "ralg", "delta-bag"}

    def test_fixed_query_three_ways(self):
        bool_result = engine_evaluate(EXPR, DB, cache=None,
                                      semiring="bool")
        delta_result = deep_dedup(tree_evaluate(EXPR, DB))
        assert bool_result == delta_result
        assert all(count == 1 for _, count in bool_result.items())

    def test_delta_commutes_gate(self):
        assert delta_commutes(EXPR, DB) is False  # Subtraction
        ok = AdditiveUnion(Dedup(var("R")),
                           MaxUnion(var("R"), var("S")))
        assert delta_commutes(ok, DB) is True

    def test_seeded_harness_run_has_no_mismatches(self):
        harness = Harness(
            backends=("oracle", "engine-boolean", "ralg", "delta-bag"))
        rng = random.Random(7)
        reports = [harness.run_case(
            generate_case(seed=rng.randrange(1 << 30),
                          fragment="balg1", size=7))
            for _ in range(25)]
        mismatches = [m for report in reports
                      for m in report.mismatches]
        assert mismatches == []


class TestPlannerPlumbing:
    def test_cache_tag_includes_semiring(self):
        nat_tag = PassConfig.for_level(2).cache_tag()
        bool_tag = PassConfig.for_level(2, semiring="bool").cache_tag()
        assert nat_tag != bool_tag

    def test_plan_cache_isolation(self):
        """N and Bool plans for one expression live under distinct
        keys: planning both must never hit across the boundary."""
        cache = PlanCache()
        plan_for(EXPR, DB, cache=cache)
        misses = cache.stats.misses
        plan_for(EXPR, DB, cache=cache, semiring="bool")
        assert cache.stats.misses == misses + 1
        hits = cache.stats.hits
        plan_for(EXPR, DB, cache=cache, semiring="bool")
        assert cache.stats.hits == hits + 1

    def test_explain_footer(self):
        text = explain_physical(EXPR, DB, semiring="tropical")
        assert "-- semiring --" in text
        assert "tropical" in text
        assert "generic" in text
        nat_text = explain_physical(EXPR, DB, semiring="nat")
        assert "-- semiring --" in nat_text
        assert "fused-int" in nat_text
        plain = explain_physical(EXPR, DB)
        assert "-- semiring --" not in plain

    def test_codegen_nat_source_has_no_semiring_argument(self):
        """The N fast path is structural: default-planned codegen
        source must not mention the semiring parameter at all."""
        plan = plan_for(EXPR, DB, engine="codegen")
        source = "".join(s.source for s in plan.segments)
        assert plan.segments
        assert "_sr" not in source

    def test_codegen_generic_source_threads_semiring(self):
        plan = plan_for(EXPR, DB, engine="codegen",
                        semiring="provenance")
        source = "".join(s.source for s in plan.segments)
        assert "_sr" in source


class TestCli:
    def _session(self, **kwargs):
        out = io.StringIO()
        return Session(out=out, **kwargs), out

    def test_semiring_command_shows_and_sets(self):
        session, out = self._session()
        session.handle(":semiring")
        assert "semiring = nat" in out.getvalue()
        session.handle(":semiring bool")
        session.handle("{{'x'}} (+) {{'x'}}")
        assert "'x'*2" not in out.getvalue()
        session.handle(":semiring nat")
        session.handle("{{'x'}} (+) {{'x'}}")
        assert "'x'*2" in out.getvalue()

    def test_semiring_command_rejects_unknown(self):
        session, out = self._session()
        session.handle(":semiring viterbi")
        assert "unknown semiring" in out.getvalue()
        assert session.semiring == "nat"

    def test_session_semiring_argument(self):
        session, out = self._session(semiring="bool")
        assert session.semiring == "bool"
        session.handle("{{'x'}} (+) {{'x'}}")
        assert "'x'*2" not in out.getvalue()

    def test_explain_carries_the_session_semiring(self):
        session, out = self._session(semiring="tropical")
        session.handle("B = {{'x', 'x'}}")
        session.handle(":explain eps(B)")
        assert "-- semiring --" in out.getvalue()
        assert "tropical" in out.getvalue()
