"""Data-driven planning: the catalog on the compile path.

The persistence half of the subsystem is covered by
``tests/test_storage.py``; this file pins the planner-facing
contracts of ISSUE 7 — zero-scan compiles against cataloged
relations, histogram selectivity, estimator honesty on skewed
workspaces, catalog-driven plan shapes, statistics-tagged plan-cache
keys, and the execution-feedback loop.
"""

import random

import pytest

from repro.core.bag import Bag, Tup
from repro.core.eval import evaluate as oracle_evaluate
from repro.core.expr import (
    Attribute, Cartesian, Const, Dedup, Lam, Map, Select, Tupling, Var,
    var,
)
from repro.engine import (
    EngineStats, evaluate as engine_evaluate, explain_physical,
    plan_for,
)
from repro.engine.cache import PlanCache
from repro.planner import PassConfig, PlanContext, compile as planner_compile
from repro.planner.stats import (
    clear_stats_memo, estimate, stats_of, stats_scan_count,
)
from repro.storage import RelationSpec, Workspace
from repro.testkit.differential import Harness
from repro.testkit.wsdiff import (
    FUZZ_SPECS, rename_free, seeded_workspace, workspace_case,
)


def _attr_eq_const(relation, index, value, op="eq"):
    return Select(Lam("t", Attribute(Var("t"), index)),
                  Lam("t", Const(value)), Var(relation), op=op)


@pytest.fixture()
def workspace(tmp_path):
    """A small analyzed workspace: uniform R, zipfian S."""
    ws = Workspace.create(str(tmp_path / "ws"))
    ws.generate((RelationSpec("R", rows=100, arity=2, distinct=20,
                              domain=10),
                 RelationSpec("S", rows=400, arity=2, distinct=40,
                              domain=25, skew="zipfian", zipf_s=1.3)),
                seed=13)
    ws.analyze()
    return ws


# ----------------------------------------------------------------------
# Zero-scan compiles and the memoized fallback
# ----------------------------------------------------------------------

def test_compile_against_catalog_scans_nothing(workspace):
    """The acceptance criterion: compiling against cataloged relations
    must not touch the bound bags at all."""
    database = workspace.database()
    expr = (var("R") + var("S")) & var("S")
    clear_stats_memo()
    before = stats_scan_count()
    ctx = PlanContext.capture(database, catalog=workspace)
    planner_compile(expr, ctx)
    assert stats_scan_count() == before
    assert ctx.stats_sources == {"R": "catalog", "S": "catalog"}


def test_catalogless_compile_scans_once_then_memoizes(workspace):
    database = workspace.database()
    expr = var("R") + var("S")
    clear_stats_memo()
    before = stats_scan_count()
    planner_compile(expr, PlanContext.capture(database))
    assert stats_scan_count() == before + 2
    # the historical bug: every compile re-derived statistics; the
    # identity memo makes repeat compiles free
    for _ in range(3):
        planner_compile(expr, PlanContext.capture(database))
    assert stats_scan_count() == before + 2


def test_stats_memo_is_identity_keyed():
    bag = Bag.from_counts({Tup(1,): 3})
    clear_stats_memo()
    before = stats_scan_count()
    assert stats_of(bag) is stats_of(bag)
    assert stats_scan_count() == before + 1
    clone = Bag.from_counts({Tup(1,): 3})
    stats_of(clone)
    assert stats_scan_count() == before + 2


def test_uncataloged_relation_falls_back_to_scan(workspace):
    database = workspace.database()
    database["X"] = Bag.from_counts({Tup(9, 9): 1})
    ctx = PlanContext.capture(database, catalog=workspace)
    assert ctx.stats_sources == {"R": "catalog", "S": "catalog",
                                 "X": "scanned"}
    assert ctx.statistics["X"].cardinality == 1.0


# ----------------------------------------------------------------------
# Statistics tags and the plan cache
# ----------------------------------------------------------------------

def test_stats_tag_is_catalog_only(workspace):
    database = workspace.database()
    database["X"] = Bag.from_counts({Tup(9, 9): 1})
    ctx = PlanContext.capture(database, catalog=workspace)
    tag = ctx.stats_tag()
    assert tag == ("stats", (("R", "catalog", 1), ("S", "catalog", 1)))
    # scanned-only compiles contribute no statistics fingerprint at
    # all: one warm plan serving two databases is pinned behaviour
    assert PlanContext.capture(database).stats_tag() is None


def test_analyze_retires_cached_plans(workspace):
    database = workspace.database()
    expr = var("R") + var("S")
    cache = PlanCache()
    stats = EngineStats()
    plan_for(expr, database, cache=cache, stats=stats,
             catalog=workspace)
    plan_for(expr, database, cache=cache, stats=stats,
             catalog=workspace)
    assert cache.stats.hits == 1
    # ANALYZE bumps epochs -> the stats tag changes -> a fresh compile
    workspace.analyze()
    plan_for(expr, database, cache=cache, stats=stats,
             catalog=workspace)
    assert cache.stats.hits == 1
    assert cache.stats.misses == 2


def test_explain_stages_report_stats_sources(workspace):
    database = workspace.database()
    ctx = PlanContext.capture(database, catalog=workspace)
    compiled = planner_compile(var("R") + var("S"), ctx)
    record = compiled.report.stage("lower")
    assert record is not None
    assert "stats: R=catalog, S=catalog" in (record.note or "")


# ----------------------------------------------------------------------
# Histogram selectivity
# ----------------------------------------------------------------------

def _head_value(workspace, relation, column):
    entry = workspace.catalog.get(relation)
    return entry.column_stats[column - 1].mcv[0]


def test_selectivity_eq_const_uses_mcv(workspace):
    oracle = workspace.selectivity_oracle()
    value, fraction = _head_value(workspace, "S", 1)
    assert oracle(_attr_eq_const("S", 1, value)) == \
        pytest.approx(fraction)
    assert oracle(_attr_eq_const("S", 1, value, op="ne")) == \
        pytest.approx(1.0 - fraction)


def test_selectivity_attr_eq_attr(workspace):
    entry = workspace.catalog.get("S")
    select = Select(Lam("t", Attribute(Var("t"), 1)),
                    Lam("t", Attribute(Var("t"), 2)), Var("S"),
                    op="eq")
    expected = 1.0 / max(entry.column_stats[0].distinct,
                         entry.column_stats[1].distinct)
    assert workspace.selectivity_oracle()(select) == \
        pytest.approx(expected, rel=1e-6)


def test_selectivity_declines_unknown_shapes(workspace):
    oracle = workspace.selectivity_oracle()
    # operand is not a bare cataloged Var
    nested = Select(Lam("t", Attribute(Var("t"), 1)),
                    Lam("t", Const(1)), Dedup(Var("S")), op="eq")
    assert oracle(nested) is None
    assert oracle(_attr_eq_const("unknown", 1, 1)) is None
    # ordering comparisons are out of the histogram's scope
    assert oracle(_attr_eq_const("S", 1, 1, op="le")) is None


def test_selectivity_never_returns_zero(workspace):
    # off-MCV values estimate from the residual mass, never zero
    oracle = workspace.selectivity_oracle()
    kept = oracle(_attr_eq_const("R", 1, "no-such-value"))
    assert kept is not None and kept > 0.0
    # a column whose MCV list covers every distinct value would
    # estimate 0 for unseen constants; the floor keeps plans sane
    from repro.storage import Catalog
    tiny = Catalog()
    tiny.analyze_bag("T", Bag.from_counts({Tup(1,): 6, Tup(2,): 4}))
    kept = tiny.selectivity_oracle()(_attr_eq_const("T", 1, 99))
    assert kept == pytest.approx(1.0 / 20.0)


# ----------------------------------------------------------------------
# Estimator honesty on zipfian workspaces
# ----------------------------------------------------------------------

def _scaled_workspace(tmp_path, scale):
    ws = Workspace.create(str(tmp_path / f"scale-{scale}"))
    ws.generate((RelationSpec("R", rows=scale, arity=2,
                              distinct=max(4, scale // 5),
                              domain=max(4, scale // 8)),
                 RelationSpec("S", rows=scale, arity=2,
                              distinct=max(4, scale // 10),
                              domain=max(4, scale // 8),
                              skew="zipfian", zipf_s=1.3)),
                seed=scale)
    ws.analyze()
    return ws


def _q_error(estimated, actual):
    if estimated <= 0 or actual <= 0:
        return float("inf")
    return max(estimated / actual, actual / estimated)


@pytest.mark.parametrize("scale", [100, 400, 1600])
def test_exact_rows_have_unit_q_error(tmp_path, scale):
    """Product, MAP, and eps rows of the estimator table are exact, so
    against fresh catalog statistics their q-error is 1 at any scale."""
    ws = _scaled_workspace(tmp_path, scale)
    database = ws.database()
    statistics = {name: ws.catalog.get(name).bag_stats()
                  for name in ("R", "S")}
    fixtures = [
        (Cartesian(var("R"), var("S")),
         database["R"].cardinality * database["S"].cardinality),
        (Map(Lam("t", Tupling(Attribute(Var("t"), 1))), var("S")),
         database["S"].cardinality),
        (Dedup(var("S")), database["S"].distinct_count),
    ]
    for expr, actual in fixtures:
        estimated = estimate(expr, statistics).cardinality
        assert _q_error(estimated, actual) == pytest.approx(1.0), expr


@pytest.mark.parametrize("scale", [100, 400])
def test_upper_bound_rows_dominate_measured(tmp_path, scale):
    """The bound-flavoured rows (unions, intersection, subtraction)
    must dominate the measured cardinality on skewed data."""
    ws = _scaled_workspace(tmp_path, scale)
    database = ws.database()
    statistics = {name: ws.catalog.get(name).bag_stats()
                  for name in ("R", "S")}
    bounded = [var("R") + var("S"), var("R") | var("S"),
               var("R") & var("S"), var("R") - var("S"),
               Dedup(var("R") + var("S"))]
    for expr in bounded:
        estimated = estimate(expr, statistics)
        actual = oracle_evaluate(expr, database)
        assert estimated.cardinality >= actual.cardinality, expr
        assert estimated.distinct >= actual.distinct_count, expr


@pytest.mark.parametrize("scale", [100, 400, 1600])
def test_mcv_selectivity_q_error_bounded(tmp_path, scale):
    """Selections on most-common values estimate from exact fractions,
    so their q-error stays ~1 where the flat default drifts with
    scale and skew."""
    ws = _scaled_workspace(tmp_path, scale)
    database = ws.database()
    statistics = {name: ws.catalog.get(name).bag_stats()
                  for name in ("R", "S")}
    oracle_fn = ws.selectivity_oracle()
    worst_catalog = worst_flat = 1.0
    for column in (1, 2):
        entry = ws.catalog.get("S")
        for value, _ in entry.column_stats[column - 1].mcv[:3]:
            expr = _attr_eq_const("S", column, value)
            actual = oracle_evaluate(expr, database).cardinality
            with_catalog = estimate(
                expr, statistics, selectivity_fn=oracle_fn).cardinality
            flat = estimate(expr, statistics).cardinality
            worst_catalog = max(worst_catalog,
                                _q_error(with_catalog, actual))
            worst_flat = max(worst_flat, _q_error(flat, actual))
    assert worst_catalog == pytest.approx(1.0, rel=1e-6)
    assert worst_flat > worst_catalog


# ----------------------------------------------------------------------
# Catalog-driven plan shapes
# ----------------------------------------------------------------------

def _join_through_filter(workspace):
    """``sigma_{a1 = a3}(R x sigma_{a1 = tail}(S))`` — the filtered
    side's estimate decides the hash-join build side."""
    entry = workspace.catalog.get("S")
    tail = entry.column_stats[0].mcv[-1][0]
    filtered = _attr_eq_const("S", 1, tail)
    product = Cartesian(var("R"), filtered)
    return Select(Lam("t", Attribute(Var("t"), 1)),
                  Lam("t", Attribute(Var("t"), 3)), product, op="eq")


def test_catalog_statistics_flip_join_build_side(workspace):
    """The acceptance plan-shape test: with the flat default the
    filtered S side looks big (0.5 * 400 = 200 > |R| = 100) and the
    join builds on R; the catalog's histogram knows the tail filter
    keeps almost nothing, so the build side flips to the filtered
    side."""
    database = workspace.database()
    expr = _join_through_filter(workspace)
    flat = plan_for(expr, database, cache=None).render()
    informed = plan_for(expr, database, cache=None,
                        catalog=workspace).render()
    assert "HashJoin" in flat and "HashJoin" in informed
    assert "build=left" in flat
    assert "build=right" in informed


def test_flipped_plan_still_agrees_with_oracle(workspace):
    database = workspace.database()
    expr = _join_through_filter(workspace)
    expected = oracle_evaluate(expr, database)
    assert engine_evaluate(expr, database, cache=None,
                           catalog=workspace) == expected
    assert engine_evaluate(expr, database, cache=None) == expected


# ----------------------------------------------------------------------
# Execution feedback
# ----------------------------------------------------------------------

def test_feedback_folds_observed_cardinality_back(workspace):
    # the relation drifts after ANALYZE: double every S multiplicity
    drifted = dict(workspace.database())
    drifted["S"] = Bag.from_counts(
        {value: 2 * count for value, count in drifted["S"].items()})
    before = workspace.catalog.get("S").epoch
    engine_evaluate(var("S") + var("R"), drifted, cache=None,
                    catalog=workspace, feedback=True)
    entry = workspace.catalog.get("S")
    assert entry.cardinality == pytest.approx(800.0)
    assert entry.epoch == before + 1
    # R was observed within the deadband: untouched
    assert workspace.catalog.get("R").epoch == before


def test_feedback_is_opt_in(workspace):
    drifted = dict(workspace.database())
    drifted["S"] = Bag.from_counts(
        {value: 2 * count for value, count in drifted["S"].items()})
    before = workspace.catalog.get("S").epoch
    engine_evaluate(var("S"), drifted, cache=None, catalog=workspace)
    assert workspace.catalog.get("S").epoch == before


def test_explain_physical_prints_estimated_vs_observed(workspace):
    database = workspace.database()
    text = explain_physical(var("R") + var("S"), database,
                            catalog=workspace, feedback=True)
    assert "-- feedback --" in text
    assert "R: estimated 100, observed 100 (scans 1)" in text


# ----------------------------------------------------------------------
# Workspace-backed differential cases
# ----------------------------------------------------------------------

def test_rename_free_renames_only_free_vars():
    expr = Select(Lam("t", Attribute(Var("t"), 1)),
                  Lam("t", Const(1)), Var("B"), op="eq")
    renamed = rename_free(expr, {"B": "R", "t": "nope"})
    assert renamed.operand == Var("R")
    assert renamed.left.param == "t"
    assert renamed.left.body == Attribute(Var("t"), 1)


def test_workspace_case_is_deterministic(tmp_path):
    ws = seeded_workspace(str(tmp_path / "fuzz"), seed=5)
    assert {spec.name for spec in FUZZ_SPECS} <= set(ws.relation_names())
    first = workspace_case(ws, seed=5, index=3)
    second = workspace_case(ws, seed=5, index=3)
    assert first.expr == second.expr
    assert first.database == second.database
    assert workspace_case(ws, 5, 4).expr != first.expr \
        or workspace_case(ws, 5, 5).expr != first.expr


def test_workspace_cases_run_clean_through_harness(tmp_path):
    ws = seeded_workspace(str(tmp_path / "fuzz"), seed=2)
    harness = Harness(backends=("oracle", "engine", "engine-warm",
                                "engine-opt2"),
                      catalog=ws)
    for index in range(12):
        report = harness.run_case(workspace_case(ws, seed=2,
                                                 index=index))
        assert report.ok, report.mismatches


def test_workspace_case_needs_flat_relations(tmp_path):
    ws = Workspace.create(str(tmp_path / "empty"))
    ws.save_relation("A", Bag.from_counts({"atom": 1}))
    with pytest.raises(ValueError):
        workspace_case(ws, seed=0)


def test_fuzz_cli_workspace_mode(tmp_path, capsys):
    from repro.testkit.cli import main as fuzz_main
    root = str(tmp_path / "fuzzws")
    corpus = str(tmp_path / "corpus")
    code = fuzz_main(["--cases", "6", "--seed", "1", "--workspace",
                      root, "--corpus", corpus, "--quiet",
                      "--backends", "oracle,engine"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "fuzz: OK" in out
    # the synthesized workspace persists for replay
    assert Workspace.open(root).relation_names()
