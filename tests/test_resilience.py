"""Unit tests for fault-tolerant parallel execution.

Covers the tentpole layers — chaos plans (``guard.faults``), the
worker-loss-aware retry runner (``guard.retry``), the resilience
policy (``engine.resilience``), and the resilient exchange scheduler
(retry / respawn / degradation ladder in ``parallel.exchange``) —
plus the engine-level replan rung, the ``engine-chaos`` differential
backend, and the ``:explain`` / CLI surfaces.
"""

from __future__ import annotations

import multiprocessing
import pickle
import random
from concurrent.futures import BrokenExecutor

import pytest

from repro.core.bag import Bag, Tup
from repro.core.errors import BudgetExceeded, Cancelled, DeadlineExceeded
from repro.core.expr import Dedup, var
from repro.engine import EngineStats, evaluate, explain_physical
from repro.engine.resilience import (
    DEFAULT_RESILIENCE, LADDER, ResilienceConfig, is_transient_fault,
    next_rung, resolve_resilience,
)
from repro.guard import (
    ChaosPlan, Limits, ResourceGovernor, RetryPolicy, WorkerCrash,
)
from repro.guard.retry import (
    WORKER_LOSS_ERRORS, RunOutcome, classify_governed_error,
    run_with_retry,
)

_FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(not _FORK,
                               reason="needs the fork start method")


def _db():
    return {"R": Bag.from_counts(
        {Tup(i % 13, i % 7): (i % 3) + 1 for i in range(240)})}


def _expr():
    return Dedup(var("R") + (var("R") - var("R")))


def _reference():
    return evaluate(_expr(), _db(), cache=None)


# ----------------------------------------------------------------------
# Chaos plans
# ----------------------------------------------------------------------


class TestChaosPlan:
    def test_firing_is_deterministic_per_shard_attempt(self):
        plan = ChaosPlan(probability=0.5, seed=9)
        twin = ChaosPlan(probability=0.5, seed=9)
        decisions = [(shard, attempt, plan.should_fire(shard, attempt))
                     for shard in range(8) for attempt in (1, 2, 3)]
        assert decisions == [
            (shard, attempt, twin.should_fire(shard, attempt))
            for shard in range(8) for attempt in (1, 2, 3)]
        # not degenerate: some fire, some do not
        fired = {fire for _, _, fire in decisions}
        assert fired == {True, False}

    def test_retry_rerolls_the_dice(self):
        plan = ChaosPlan(probability=0.5, seed=3)
        outcomes = {plan.should_fire(0, attempt)
                    for attempt in range(1, 30)}
        assert outcomes == {True, False}

    def test_shard_scoping(self):
        plan = ChaosPlan(probability=1.0, shards=(2, 5))
        assert plan.should_fire(2, 1) and plan.should_fire(5, 1)
        assert not plan.should_fire(0, 1)
        assert ChaosPlan(shards=(5, 2, 5)).shards == (2, 5)

    def test_max_attempt_silences(self):
        plan = ChaosPlan(probability=1.0, max_attempt=1)
        assert plan.should_fire(0, 1)
        assert not plan.should_fire(0, 2)

    def test_fire_at_lands_inside_the_program(self):
        plan = ChaosPlan(probability=1.0, seed=1)
        for shard in range(6):
            step = plan.fire_at(shard, 1, num_steps=5)
            assert step is not None and 0 <= step < 5
        assert ChaosPlan().fire_at(0, 1, 5) is None

    def test_fire_raises_worker_crash_with_scope(self):
        plan = ChaosPlan(kind="worker-crash", probability=1.0)
        with pytest.raises(WorkerCrash) as info:
            plan.fire(3, 2, in_process_worker=False)
        assert info.value.shard == 3
        assert info.value.attempt == 2
        assert info.value.injected

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosPlan(kind="meteor")
        with pytest.raises(ValueError):
            ChaosPlan(probability=1.5)

    def test_plans_and_crashes_pickle(self):
        plan = ChaosPlan(kind="worker-crash", probability=0.3, seed=7,
                         shards=(1, 2), max_attempt=4)
        assert pickle.loads(pickle.dumps(plan)) == plan
        crash = WorkerCrash("boom", shard=5, attempt=2)
        thawed = pickle.loads(pickle.dumps(crash))
        assert isinstance(thawed, WorkerCrash)
        assert (thawed.shard, thawed.attempt) == (5, 2)
        assert str(thawed) == "boom"


# ----------------------------------------------------------------------
# Retry policy: jitter + worker-loss classification
# ----------------------------------------------------------------------


class TestRetryJitter:
    def test_default_delays_are_bit_identical(self):
        policy = RetryPolicy(attempts=4, backoff=0.5)
        assert [policy.delay_for(a) for a in (1, 2, 3)] == [0.5, 1.0, 2.0]
        # passing an RNG with jitter=0 changes nothing
        rng = random.Random(1)
        assert policy.delay_for(2, rng) == 1.0

    def test_jitter_stretches_within_bounds_and_replays(self):
        policy = RetryPolicy(attempts=3, backoff=1.0, jitter=0.5)
        first = [policy.delay_for(a, random.Random(7)) for a in (1, 2)]
        second = [policy.delay_for(a, random.Random(7)) for a in (1, 2)]
        assert first == second
        base = [1.0, 2.0]
        for delay, floor in zip(first, base):
            assert floor <= delay <= floor * 1.5
        assert first != base  # the stretch actually happened

    def test_jitter_without_rng_is_ignored(self):
        policy = RetryPolicy(attempts=2, backoff=1.0, jitter=0.5)
        assert policy.delay_for(1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)


class TestWorkerLossClassification:
    def test_classify_worker_loss(self):
        assert classify_governed_error(WorkerCrash("x")) == "worker-lost"
        assert classify_governed_error(BrokenExecutor()) == "worker-lost"
        assert (classify_governed_error(BudgetExceeded("b"))
                == "budget-exceeded")
        assert (classify_governed_error(DeadlineExceeded("d"))
                == "deadline-exceeded")
        assert classify_governed_error(Cancelled("c")) == "cancelled"

    def test_run_with_retry_recovers_from_worker_loss(self):
        def flaky(attempt):
            if attempt < 3:
                raise WorkerCrash("transient")
            return 42

        outcome = run_with_retry(flaky, RetryPolicy(attempts=3),
                                 sleep=lambda _: None)
        assert outcome.status == "retried"
        assert outcome.value == 42
        assert outcome.attempts == 3

    def test_run_with_retry_reports_worker_lost_on_exhaustion(self):
        def dead(attempt):
            raise WorkerCrash("always")

        outcome = run_with_retry(dead, RetryPolicy(attempts=2),
                                 sleep=lambda _: None)
        assert outcome.status == "worker-lost"
        assert not outcome.ok
        assert isinstance(outcome.error, WorkerCrash)

    def test_mark_degraded(self):
        outcome = RunOutcome("ok", value=1)
        assert outcome.mark_degraded().status == "degraded"
        assert outcome.ok
        failed = RunOutcome("budget-exceeded")
        assert failed.mark_degraded().status == "budget-exceeded"

    def test_worker_loss_errors_are_not_governed(self):
        from repro.core.errors import GovernedError
        for cls in WORKER_LOSS_ERRORS:
            assert not issubclass(cls, GovernedError)


# ----------------------------------------------------------------------
# Resilience policy
# ----------------------------------------------------------------------


class TestResilienceConfig:
    def test_ladder_descends_to_serial(self):
        assert LADDER == ("process", "thread", "serial")
        assert next_rung("process") == "thread"
        assert next_rung("thread") == "serial"
        assert next_rung("serial") is None

    def test_transient_faults(self):
        assert is_transient_fault(WorkerCrash("x"))
        assert is_transient_fault(BrokenExecutor())
        assert is_transient_fault(OSError("fork failed"))
        assert not is_transient_fault(BudgetExceeded("b"))
        assert not is_transient_fault(ValueError("bug"))

    def test_resolve(self):
        assert resolve_resilience(None) is None
        assert resolve_resilience(False) is None
        assert resolve_resilience(True) is DEFAULT_RESILIENCE
        config = ResilienceConfig(seed=5)
        assert resolve_resilience(config) is config
        with pytest.raises(TypeError):
            resolve_resilience("yes")

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(max_demotions=-1)


# ----------------------------------------------------------------------
# The resilient exchange: retry, respawn, ladder
# ----------------------------------------------------------------------


class TestThreadResilience:
    def test_zero_chaos_matches_failfast_result(self):
        stats = EngineStats()
        result = evaluate(_expr(), _db(), cache=None, engine="parallel",
                          workers=2, parallel_threshold=0.0,
                          resilience=True, stats=stats)
        assert result == _reference()
        assert stats.morsel_retries == 0
        assert stats.pool_respawns == 0
        assert stats.demotions == []

    def test_morsel_retry_recovers_transient_faults(self):
        stats = EngineStats()
        config = ResilienceConfig(chaos=ChaosPlan(
            kind="morsel-fault", probability=1.0, max_attempt=1))
        result = evaluate(_expr(), _db(), cache=None, engine="parallel",
                          workers=2, parallel_threshold=0.0,
                          resilience=config, stats=stats)
        assert result == _reference()
        assert stats.morsel_retries > 0
        assert stats.demotions == []

    def test_ladder_demotes_to_serial_when_retries_exhaust(self):
        stats = EngineStats()
        config = ResilienceConfig(chaos=ChaosPlan(
            kind="worker-crash", probability=1.0))
        result = evaluate(_expr(), _db(), cache=None, engine="parallel",
                          workers=2, parallel_threshold=0.0,
                          resilience=config, stats=stats)
        assert result == _reference()
        assert len(stats.demotions) == 1
        assert stats.demotions[0].startswith("thread->serial:")
        assert "worker-lost" in stats.demotions[0]

    def test_partial_progress_survives_demotion(self):
        """Shards that finished on the thread rung are not re-run on
        the serial rung — the merged bag is still exactly right."""
        stats = EngineStats()
        config = ResilienceConfig(
            retry=RetryPolicy(attempts=1),
            chaos=ChaosPlan(kind="morsel-fault", probability=1.0,
                            shards=(0,)))
        result = evaluate(_expr(), _db(), cache=None, engine="parallel",
                          workers=2, parallel_threshold=0.0,
                          resilience=config, stats=stats)
        assert result == _reference()
        assert len(stats.demotions) == 1

    def test_governed_errors_keep_fail_fast_contract(self):
        governor = ResourceGovernor(Limits(max_steps=5))
        stats = EngineStats()
        with pytest.raises(BudgetExceeded):
            evaluate(_expr(), _db(), cache=None, engine="parallel",
                     workers=2, parallel_threshold=0.0, governor=governor,
                     resilience=True, stats=stats)
        assert stats.morsel_retries == 0
        assert stats.demotions == []
        # the fail-fast token reset still applies under resilience
        assert not governor.token.cancelled

    def test_worker_crash_without_resilience_fails_fast(self):
        # chaos only exists inside a ResilienceConfig, so simulate the
        # crash directly: a WorkerCrash escaping a worker must
        # propagate (it is not governed) when resilience is off
        from repro.engine.parallel import exchange as exchange_mod
        original = exchange_mod.execute_program

        def crashing(program, inputs, **kwargs):
            raise WorkerCrash("no safety net", shard=0, attempt=1)

        exchange_mod.execute_program = crashing
        try:
            with pytest.raises(WorkerCrash):
                evaluate(_expr(), _db(), cache=None, engine="parallel",
                         workers=2, parallel_threshold=0.0)
        finally:
            exchange_mod.execute_program = original


@fork_only
class TestProcessResilience:
    def test_pool_respawn_reschedules_unfinished_shards(self):
        """A genuine worker death (os._exit in the child) breaks the
        pool; one respawn reruns only the unfinished shards."""
        stats = EngineStats()
        config = ResilienceConfig(chaos=ChaosPlan(
            kind="worker-crash", probability=1.0, shards=(0,),
            max_attempt=1))
        result = evaluate(_expr(), _db(), cache=None, engine="parallel",
                          workers=2, parallel_backend="process",
                          parallel_threshold=0.0,
                          resilience=config, stats=stats)
        assert result == _reference()
        assert stats.pool_respawns == 1
        assert stats.demotions == []

    def test_morsel_fault_retries_inside_the_pool(self):
        stats = EngineStats()
        config = ResilienceConfig(chaos=ChaosPlan(
            kind="morsel-fault", probability=1.0, shards=(1,),
            max_attempt=1))
        # min_morsel_rows=1 forces the full multi-shard split so the
        # chaos scope (shard 1) exists even on this small input
        result = evaluate(_expr(), _db(), cache=None, engine="parallel",
                          workers=2, parallel_backend="process",
                          parallel_threshold=0.0, min_morsel_rows=1,
                          resilience=config, stats=stats)
        assert result == _reference()
        assert stats.morsel_retries == 1
        assert stats.pool_respawns == 0

    def test_full_ladder_descent(self):
        """worker-crash at p=1.0: the pool breaks, the respawn breaks
        again, the thread rung crashes out of retries, the serial
        floor answers — two recorded demotions, bag-equal result."""
        stats = EngineStats()
        config = ResilienceConfig(
            retry=RetryPolicy(attempts=2),
            chaos=ChaosPlan(kind="worker-crash", probability=1.0))
        result = evaluate(_expr(), _db(), cache=None, engine="parallel",
                          workers=2, parallel_backend="process",
                          parallel_threshold=0.0,
                          resilience=config, stats=stats)
        assert result == _reference()
        assert stats.pool_respawns == 1
        assert [entry.split(":")[0] for entry in stats.demotions] == [
            "process->thread", "thread->serial"]

    def test_max_demotions_zero_escalates(self):
        config = ResilienceConfig(
            retry=RetryPolicy(attempts=1), max_demotions=0,
            chaos=ChaosPlan(kind="worker-crash", probability=1.0))
        with pytest.raises(BrokenExecutor):
            evaluate(_expr(), _db(), cache=None, engine="parallel",
                     workers=2, parallel_backend="process",
                     parallel_threshold=0.0, resilience=config)


class TestReplanRung:
    def test_replan_recompiles_serially_after_ladder_exhaustion(self):
        stats = EngineStats()
        config = ResilienceConfig(
            retry=RetryPolicy(attempts=1), max_demotions=0, replan=True,
            chaos=ChaosPlan(kind="worker-crash", probability=1.0))
        result = evaluate(_expr(), _db(), cache=None, engine="parallel",
                          workers=2, parallel_threshold=0.0,
                          resilience=config, stats=stats)
        assert result == _reference()
        assert stats.demotions[-1].startswith("parallel->replan:")

    def test_without_replan_the_fault_escapes(self):
        config = ResilienceConfig(
            retry=RetryPolicy(attempts=1), max_demotions=0,
            chaos=ChaosPlan(kind="worker-crash", probability=1.0))
        with pytest.raises(WorkerCrash):
            evaluate(_expr(), _db(), cache=None, engine="parallel",
                     workers=2, parallel_threshold=0.0,
                     resilience=config)


# ----------------------------------------------------------------------
# Differential backend + surfaces
# ----------------------------------------------------------------------


class TestChaosBackend:
    def test_engine_chaos_in_default_backends(self):
        from repro.testkit.differential import DEFAULT_BACKENDS
        assert "engine-chaos" in DEFAULT_BACKENDS

    def test_engine_chaos_matches_oracle_under_injected_crashes(self):
        from repro.testkit.differential import Harness
        from repro.testkit.generate import generate_case
        harness = Harness(backends=("oracle", "engine-chaos"),
                          metamorphic=False)
        for index in range(12):
            report = harness.run_case(generate_case(17, index))
            assert report.mismatches == [], report.mismatches


class TestSurfaces:
    def test_explain_footer_reports_resilience(self):
        text = explain_physical(_expr(), _db(), engine="parallel",
                                workers=2, parallel_threshold=0.0,
                                resilience=True)
        assert "-- resilience --" in text
        assert "morsel retries" in text
        assert "demotions            none" in text

    def test_explain_footer_absent_without_resilience(self):
        text = explain_physical(_expr(), _db(), engine="parallel",
                                workers=2, parallel_threshold=0.0)
        assert "-- resilience --" not in text

    def test_core_eval_threads_resilience_through(self):
        from repro.core.eval import evaluate as core_evaluate
        result = core_evaluate(
            _expr(), _db(), engine="parallel", workers=2,
            resilience=ResilienceConfig(chaos=ChaosPlan(
                kind="morsel-fault", probability=1.0, max_attempt=1)))
        assert result == _reference()

    def test_cli_session_resilience_toggle(self):
        import io

        from repro.cli import Session
        out = io.StringIO()
        session = Session(out=out, engine="parallel",
                          resilience=True)
        assert session.resilience
        session.handle(":resilience off")
        assert not session.resilience
        session.handle(":resilience on")
        session.handle("B = {{['a'], ['a'], ['b']}}")
        session.handle("eps(B)")
        assert "{{['a'], ['b']}}" in out.getvalue()
