"""Tests for the symbolic counting lemma (Props 4.1 / 4.5) —
repro.complexity.polynomials."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.complexity.polynomials import (
    CountingAnalysis, Polynomial, analyze, refute_bag_even,
    refute_dedup, single_constant_input,
)
from repro.core.bag import Bag, Tup
from repro.core.derived import (
    bag_even_native, project_expr, select_attr_eq_attr,
    select_attr_eq_const,
)
from repro.core.errors import BagTypeError
from repro.core.eval import evaluate
from repro.core.expr import (
    Cartesian, Const, Dedup, Lam, Map, Powerset, Select, Tupling, Var,
    var,
)
from repro.core.ops import dedup


class TestPolynomial:
    def test_construction_drops_zeros(self):
        assert Polynomial({2: 0, 1: 3}).coefficients() == {1: 3}

    def test_degree_and_leading(self):
        poly = Polynomial({3: 2, 0: -1})
        assert poly.degree == 3
        assert poly.leading_coefficient == 2
        assert poly.constant_term == -1

    def test_zero_polynomial(self):
        zero = Polynomial()
        assert zero.is_zero()
        assert zero.degree == -1
        assert zero(100) == 0

    def test_arithmetic(self):
        x = Polynomial.x()
        square_plus = x * x + Polynomial.constant(3)
        assert square_plus(4) == 19
        assert (square_plus - square_plus).is_zero()

    def test_eventually_positive(self):
        assert Polynomial({1: 1, 0: -1000}).eventually_positive()
        assert not Polynomial({1: -1, 0: 1000}).eventually_positive()
        assert not Polynomial().eventually_positive()

    def test_sign_stability_bound(self):
        poly = Polynomial({1: 1, 0: -1000})  # root at 1000
        bound = poly.sign_stability_bound()
        assert poly(bound + 1) > 0
        assert all(poly(bound + i) > 0 for i in range(1, 10))

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            Polynomial({-1: 1})

    @given(st.dictionaries(st.integers(0, 4), st.integers(-5, 5),
                           max_size=4),
           st.integers(0, 10))
    def test_evaluation_matches_horner(self, coeffs, n):
        poly = Polynomial(coeffs)
        expected = sum(c * n ** d for d, c in coeffs.items())
        assert poly(n) == expected


# A battery of BALG^1 expressions over the single input B.  Following
# the claim's hypothesis, the constants in the expressions avoid the
# distinguished input atom "a".
def _battery():
    B = var("B")
    two_tuples = Const(Bag.of(Tup("b"), Tup("c")))
    return [
        B,
        B + B,
        B - Const(Bag.of(Tup("b"))),
        Const(Bag.of(Tup("b"))) - B,
        B | two_tuples,
        B & two_tuples,
        Cartesian(B, B),
        project_expr(Cartesian(B, B), 1),
        project_expr(select_attr_eq_attr(Cartesian(B, B), 1, 2), 1),
        select_attr_eq_const(B, 1, "a"),
        select_attr_eq_const(B, 1, "zzz"),
        Map(Lam("t", Tupling(Const("c"), Var("t"))), B),
        Dedup(B),
        Dedup(B + B),
        Dedup(Cartesian(B, two_tuples)),
        (B + B) - B,
    ]


class TestAnalysisAgainstEvaluator:
    """The core validation: P_t(n) equals the actual multiplicity for
    every n beyond the threshold."""

    @pytest.mark.parametrize("index", range(len(_battery())))
    def test_polynomials_match_evaluation(self, index):
        expr = _battery()[index]
        analysis = analyze(expr)
        for offset in range(1, 6):
            n = analysis.threshold + offset
            result = evaluate(expr, B=single_constant_input(n))
            # every predicted tuple matches, and nothing unpredicted
            # appears
            predicted_support = analysis.support()
            for candidate in set(result.distinct()) | {
                    t for t in predicted_support}:
                assert result.multiplicity(candidate) == \
                    analysis.polynomial_for(candidate)(n), (
                        expr, candidate, n)

    @pytest.mark.parametrize("index", range(len(_battery())))
    def test_claim_invariant(self, index):
        """The claim's side condition: zero constant term whenever the
        input constant occurs in the tuple.  It is stated for the
        eps-free fragment (Prop 4.1); eps maps positive polynomials to
        the constant 1, so expressions containing it are exempt (this
        is exactly why Prop 4.5 needs the extended claim)."""
        expr = _battery()[index]
        if any(isinstance(node, Dedup) for node in expr.walk()):
            pytest.skip("claim invariant applies to the eps-free "
                        "fragment")
        assert analyze(expr).verify_claim_invariant()


class TestAnalysisStructure:
    def test_var_polynomial_is_n(self):
        analysis = analyze(var("B"))
        assert analysis.polynomial_for(Tup("a")) == Polynomial.x()

    def test_product_squares(self):
        analysis = analyze(Cartesian(var("B"), var("B")))
        assert analysis.polynomial_for(Tup("a", "a")) == (
            Polynomial.x() * Polynomial.x())

    def test_subtraction_vanishing(self):
        analysis = analyze(var("B") - var("B"))
        assert analysis.polynomial_for(Tup("a")).is_zero()

    def test_subtraction_of_constant(self):
        analysis = analyze(var("B") - Const(Bag.from_counts(
            {Tup("a"): 3})))
        poly = analysis.polynomial_for(Tup("a"))
        assert poly.coefficients() == {1: 1, 0: -3}
        assert analysis.threshold >= 3

    def test_dedup_produces_constant_one(self):
        analysis = analyze(Dedup(var("B")))
        assert analysis.polynomial_for(Tup("a")) == \
            Polynomial.constant(1)

    def test_unsupported_operator_rejected(self):
        with pytest.raises(BagTypeError):
            analyze(Powerset(var("B")))

    def test_foreign_variable_rejected(self):
        with pytest.raises(BagTypeError):
            analyze(var("C"))

    def test_empty_constant_rejected(self):
        with pytest.raises(BagTypeError):
            analyze(var("B") + Const(Bag()))


class TestInexpressibility:
    """Propositions 4.1 and 4.5, machine-checked per candidate."""

    def test_every_battery_expression_fails_to_be_dedup(self):
        # None of the eps-free candidates computes eps (Prop 4.1); the
        # witness n is verified against the evaluator.
        for expr in _battery():
            if any(isinstance(node, Dedup) for node in expr.walk()):
                continue  # Prop 4.1 excludes the eps operator itself
            witness = refute_dedup(expr)
            assert witness is not None
            bag = single_constant_input(witness)
            assert evaluate(expr, B=bag) != dedup(bag)

    def test_dedup_itself_cannot_be_refuted(self):
        assert refute_dedup(Dedup(var("B"))) is None

    def test_every_battery_expression_fails_to_be_bag_even(self):
        # Prop 4.5: including expressions that *use* eps.
        for expr in _battery():
            witness = refute_bag_even(expr)
            bag = single_constant_input(witness)
            assert evaluate(expr, B=bag) != bag_even_native(bag), expr

    def test_witness_is_beyond_threshold(self):
        expr = var("B") - Const(Bag.from_counts({Tup("a"): 5}))
        analysis = analyze(expr)
        witness = refute_bag_even(expr)
        assert witness > analysis.threshold
