"""Tests for duplicate growth (Prop 3.2), probabilities (Example 4.2),
and evaluation profiling (Theorems 4.4 / 5.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.complexity.growth import (
    delta2_p2_occurrences, delta_p_occurrences, delta_pb_occurrences,
    max_multiplicity, measure_delta2_p2, measure_delta_p,
    measure_delta_pb, uniform_bag,
)
from repro.complexity.probability import (
    estimate_probability, probability_series, random_graph,
    random_unary_relation,
)
from repro.complexity.profile import (
    fit_exponent_of_two, fit_power_law, profile_sweep,
)
from repro.core.bag import Bag, Tup
from repro.core.derived import card_greater_expr, count_expr
from repro.core.expr import Powerset, var
import random


class TestGrowthClosedForms:
    """The claim inside Proposition 3.2, measured exactly."""

    @pytest.mark.parametrize("k,m", [(1, 1), (1, 3), (2, 2), (3, 1),
                                     (2, 3)])
    def test_delta_p_formula(self, k, m):
        steps = measure_delta_p(uniform_bag(k, m), 1)
        assert steps[0].max_multiplicity == delta_p_occurrences(m, k)

    @pytest.mark.parametrize("k,m", [(1, 1), (1, 2), (2, 1), (2, 2)])
    def test_delta2_p2_formula(self, k, m):
        steps = measure_delta2_p2(uniform_bag(k, m), 1)
        assert steps[0].max_multiplicity == delta2_p2_occurrences(m, k)

    @pytest.mark.parametrize("k,m", [(1, 1), (1, 3), (2, 2), (3, 1)])
    def test_delta_pb_formula(self, k, m):
        steps = measure_delta_pb(uniform_bag(k, m), 1)
        assert steps[0].max_multiplicity == delta_pb_occurrences(m, k)

    def test_second_delta_p_application_is_polynomial(self):
        """Prop 3.2's key asymmetry: after the first delta-P the growth
        per application is polynomial (quadratic-ish), not exponential.
        """
        steps = measure_delta_p(uniform_bag(1, 2), 3)
        m1 = steps[0].max_multiplicity   # 3
        m2 = steps[1].max_multiplicity   # m1(m1+1)/2
        m3 = steps[2].max_multiplicity
        assert m2 == m1 * (m1 + 1) // 2
        assert m3 == m2 * (m2 + 1) // 2
        # polynomial: the ratio of logs stays bounded (degree 2)
        assert m3 < (m2 + 1) ** 2

    def test_delta_pb_is_exponential_every_step(self):
        """Theorem 5.5's engine: powerbag doubles per element at every
        application."""
        steps = measure_delta_pb(uniform_bag(1, 2), 2)
        first = steps[0].max_multiplicity       # 2 * 2^(2-1) = 4
        second = steps[1].max_multiplicity
        assert first == 4
        # second application acts on a bag of size 4:
        # occurrences = 4 * 2^(4-1) = 32
        assert second == 4 * 2 ** 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            delta_p_occurrences(2, 0)
        with pytest.raises(ValueError):
            delta2_p2_occurrences(-1, 1)

    def test_max_multiplicity(self):
        assert max_multiplicity(Bag()) == 0
        assert max_multiplicity(Bag.from_counts({"a": 7, "b": 2})) == 7

    def test_uniform_bag_shape(self):
        bag = uniform_bag(3, 4)
        assert bag.distinct_count == 3
        assert bag.cardinality == 12


class TestProbability:
    def test_random_relation_is_a_set(self):
        rng = random.Random(1)
        relation = random_unary_relation(10, rng)
        assert relation.is_set()
        assert relation.cardinality <= 10

    def test_random_graph_edges(self):
        rng = random.Random(1)
        graph = random_graph(5, rng)
        assert graph.is_set()
        assert all(edge.arity == 2 for edge in graph.distinct())

    def test_estimate_is_reproducible(self):
        def bigger(r, s):
            return r.cardinality > s.cardinality
        one = estimate_probability(
            bigger, [random_unary_relation, random_unary_relation],
            10, 200, seed=42)
        two = estimate_probability(
            bigger, [random_unary_relation, random_unary_relation],
            10, 200, seed=42)
        assert one.successes == two.successes

    def test_cardinality_comparison_near_half(self):
        """Example 4.2: mu_n(card R > card S) tends to 1/2."""
        estimate = estimate_probability(
            lambda r, s: r.cardinality > s.cardinality,
            [random_unary_relation, random_unary_relation],
            n=40, trials=600, seed=7)
        assert abs(estimate.probability - 0.5) < 0.1

    def test_zero_one_law_for_relational_property(self):
        """Contrast: a constant-free relational property ('some element
        present') has asymptotic probability 1."""
        estimate = estimate_probability(
            lambda r: not r.is_empty(),
            [random_unary_relation], n=40, trials=300, seed=3)
        assert estimate.probability == 1.0

    def test_series_shapes(self):
        series = probability_series(
            lambda r: True, [random_unary_relation], sizes=[2, 4],
            trials=10)
        assert [estimate.n for estimate in series] == [2, 4]
        assert all(estimate.probability == 1.0 for estimate in series)

    def test_standard_error(self):
        estimate = estimate_probability(
            lambda r: r.cardinality % 2 == 0,
            [random_unary_relation], n=10, trials=100, seed=0)
        assert 0 <= estimate.standard_error <= 0.06


class TestProfiling:
    def test_balg1_multiplicity_polynomial(self):
        """Theorem 4.4's invariant: BALG^1 multiplicities grow
        polynomially — a bounded log-log slope."""
        def database(n):
            return {"R": Bag([Tup(i) for i in range(n)]),
                    "S": Bag([Tup(-i - 1) for i in range(n)])}
        rows = profile_sweep(
            lambda n: card_greater_expr(var("R"), var("S")),
            database, sizes=[4, 8, 16, 32])
        slope = fit_power_law(rows)
        assert 0.5 < slope < 3.0  # polynomial, low degree

    def test_powerset_multiplicity_exponential(self):
        """Theorem 5.1 territory: with P in play, delta(P(B)) holds
        exponentially many duplicates — linear in n on a log2 scale."""
        from repro.core.expr import BagDestroy
        def database(n):
            return {"B": Bag.from_counts({Tup("a"): n})}
        rows = profile_sweep(
            lambda n: BagDestroy(Powerset(var("B"))),
            database, sizes=[2, 4, 6, 8])
        # multiplicity after delta-P on n copies of one tuple is
        # n(n+1)/2 — polynomial; use counting bags with distinct
        # elements to see the exponential in the distinct count:
        def database2(n):
            return {"B": Bag([Tup(str(i)) for i in range(n)])}
        rows2 = profile_sweep(
            lambda n: BagDestroy(Powerset(var("B"))),
            database2, sizes=[2, 4, 6, 8])
        slope = fit_exponent_of_two(rows2)
        assert slope > 0.2  # genuinely exponential in n

    def test_profile_rows_capture_input_size(self):
        rows = profile_sweep(
            lambda n: var("R"),
            lambda n: {"R": Bag([Tup(i) for i in range(n)])},
            sizes=[3, 6])
        assert rows[0].input_size < rows[1].input_size
        assert rows[0].peak_multiplicity == 1
