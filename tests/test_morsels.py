"""Unit tests for columnar morsels and worker-resident segments.

Covers the columnar shard codec (``parallel.codec``), the
worker-local compiled-segment cache (``parallel.partition``), the
adaptive morsel granularity (``parallel.exchange``), the
``bytes_shipped`` accounting, and the lazy ``Tup`` hash cache that
makes decoded values cheap to rebuild.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.core.bag import Bag, Tup
from repro.core.expr import Dedup, var
from repro.engine import EngineStats, evaluate, explain_physical
from repro.engine.parallel import (
    ParallelConfig, adaptive_shards, clear_segment_cache,
    compiled_segment_for, decode_shard, encode_shard,
    segment_cache_len,
)
from repro.engine.parallel.exchange import MORSEL_MIN_ROWS
from repro.guard import ChaosPlan, Limits, ResourceGovernor
from repro.engine.resilience import ResilienceConfig

_FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(not _FORK,
                               reason="needs the fork start method")


def _db():
    return {"R": Bag.from_counts(
        {Tup(i % 13, i % 7): (i % 3) + 1 for i in range(240)})}


def _expr():
    return Dedup(var("R") + (var("R") - var("R")))


# ----------------------------------------------------------------------
# Codec round-trips
# ----------------------------------------------------------------------


class TestCodecRoundTrip:
    def test_empty_shard(self):
        assert decode_shard(encode_shard({})) == {}

    def test_scalar_atoms(self):
        shard = {
            Tup(None, "x"): 1,
            Tup(True, "y"): 2,
            Tup(False, "z"): 3,
            Tup(0, "a"): 4,
            Tup(-(2 ** 40), "b"): 5,
            Tup(2 ** 40, "c"): 6,
            Tup(1.5, "d"): 7,
            Tup(b"raw", "e"): 8,
            Tup("", "f"): 9,
        }
        assert decode_shard(encode_shard(shard)) == shard

    def test_bool_does_not_collapse_into_int(self):
        # True == 1 in Python, so the two live in *different* dict
        # entries only when paired with distinct atoms — what must
        # survive is the runtime type of each decoded attribute
        shard = {Tup(True, "t"): 3, Tup(1, "i"): 5}
        decoded = decode_shard(encode_shard(shard))
        by_label = {value.attribute(2): value.attribute(1)
                    for value in decoded}
        assert by_label["t"] is True
        assert type(by_label["i"]) is int and by_label["i"] == 1

    def test_nested_tuples_and_bags(self):
        inner = Bag.from_counts({Tup(1, "a"): 2, Tup(2, "b"): 1})
        shard = {
            Tup(1, Tup(2, Tup(3, "deep"))): 4,
            Tup(2, inner): 7,
            Tup(3, Bag.from_counts({})): 1,
        }
        decoded = decode_shard(encode_shard(shard))
        assert decoded == shard
        # decoded values hash and compare like freshly built ones
        for value in decoded:
            assert hash(value) == hash(next(v for v in shard
                                            if v == value))

    def test_bare_atom_values(self):
        # shards of a projection segment can hold bare atoms
        shard = {1: 3, "x": 2, None: 1, 2.25: 9}
        assert decode_shard(encode_shard(shard)) == shard

    def test_exotic_atom_pickle_fallback(self):
        shard = {Tup(frozenset({1, 2}), "x"): 3}
        assert decode_shard(encode_shard(shard)) == shard

    def test_counts_survive_verbatim(self):
        shard = {Tup(i): (i * 37) % 1000 + 1 for i in range(200)}
        assert decode_shard(encode_shard(shard)) == shard

    def test_rejects_non_codec_blob(self):
        with pytest.raises(ValueError):
            decode_shard(b"PKL\x00garbage")

    def test_atom_interning_amortises_join_output(self):
        """A join-shaped shard (wide tuples over a small atom domain)
        must beat pickle by at least 5x — the satellite's wire-size
        claim, asserted at unit level."""
        shard = {Tup(i % 13, i % 7, i % 13, i % 5): (i % 3) + 1
                 for i in range(4000)}
        blob = encode_shard(shard)
        pickled = pickle.dumps(shard,
                               protocol=pickle.HIGHEST_PROTOCOL)
        assert len(blob) * 5 <= len(pickled)
        assert decode_shard(blob) == shard


# ----------------------------------------------------------------------
# Worker-resident compiled segments
# ----------------------------------------------------------------------

_PROGRAM = (("union", 0, 1), ("dedup", 2))


class TestSegmentCache:
    def setup_method(self):
        clear_segment_cache()

    def test_same_plan_reuses_compiled_closures(self):
        stats = EngineStats()
        first = compiled_segment_for(_PROGRAM, tag=("t",), stats=stats)
        second = compiled_segment_for(_PROGRAM, tag=("t",), stats=stats)
        assert second is first
        assert stats.segment_cache_misses == 1
        assert stats.segment_cache_hits == 1

    def test_tag_change_invalidates(self):
        stats = EngineStats()
        a = compiled_segment_for(_PROGRAM, tag=("opt0",), stats=stats)
        b = compiled_segment_for(_PROGRAM, tag=("opt3",), stats=stats)
        assert a is not b
        assert stats.segment_cache_misses == 2
        assert stats.segment_cache_hits == 0
        assert segment_cache_len() == 2

    def test_program_change_invalidates(self):
        a = compiled_segment_for(_PROGRAM, tag=("t",))
        b = compiled_segment_for((("union", 0, 1),), tag=("t",))
        assert a is not b
        assert segment_cache_len() == 2

    def test_cache_is_bounded(self):
        from repro.engine.parallel.partition import _SEGMENT_CACHE_CAP
        for k in range(_SEGMENT_CACHE_CAP + 10):
            compiled_segment_for((("scale", 0, k + 1),), tag=None)
        assert segment_cache_len() <= _SEGMENT_CACHE_CAP

    def test_thread_morsels_hit_after_first_compile(self):
        """workers=1 runs morsels sequentially: the first compiles,
        every later morsel of the same plan (and every later run of
        the same plan) hits the resident segment."""
        stats = EngineStats()
        db = _db()
        evaluate(_expr(), db, cache=None, engine="parallel",
                 workers=1, parallel_threshold=0.0, min_morsel_rows=1,
                 stats=stats)
        assert stats.segment_cache_misses == 1
        assert stats.segment_cache_hits == stats.morsels_executed - 1
        again = EngineStats()
        evaluate(_expr(), db, cache=None, engine="parallel",
                 workers=1, parallel_threshold=0.0, min_morsel_rows=1,
                 stats=again)
        assert again.segment_cache_misses == 0
        assert again.segment_cache_hits == again.morsels_executed

    def test_opt_levels_do_not_share_segments(self):
        """Different pass configs carry different cache tags, so an
        opt-0 plan never reuses an opt-3 worker segment even when the
        program text coincides."""
        db = _db()
        for level in (0, 3):
            stats = EngineStats()
            evaluate(_expr(), db, cache=None, engine="parallel",
                     workers=1, parallel_threshold=0.0,
                     min_morsel_rows=1, opt_level=level, stats=stats)
            assert stats.segment_cache_misses >= 1

    @fork_only
    def test_process_lookups_counted_exactly_once_per_morsel(self):
        """Per-task stats ship back with the outcome and merge exactly
        once — every completed morsel contributes one cache lookup,
        hit or miss, never two."""
        stats = EngineStats()
        result = evaluate(_expr(), _db(), cache=None, engine="parallel",
                          workers=2, parallel_backend="process",
                          parallel_threshold=0.0, min_morsel_rows=1,
                          stats=stats)
        assert result == evaluate(_expr(), _db(), cache=None)
        assert (stats.segment_cache_hits + stats.segment_cache_misses
                == stats.morsels_executed)

    @fork_only
    def test_respawned_pool_rebuilds_without_double_counting(self):
        """A worker crash breaks the pool; the respawned pool re-runs
        the shard and its (fresh) lookup is still counted exactly once
        — the crashed attempt's stats died with the worker."""
        stats = EngineStats()
        config = ResilienceConfig(chaos=ChaosPlan(
            kind="worker-crash", probability=1.0, shards=(0,),
            max_attempt=1))
        result = evaluate(_expr(), _db(), cache=None, engine="parallel",
                          workers=2, parallel_backend="process",
                          parallel_threshold=0.0,
                          resilience=config, stats=stats)
        assert result == evaluate(_expr(), _db(), cache=None)
        assert stats.pool_respawns == 1
        assert (stats.segment_cache_hits + stats.segment_cache_misses
                == stats.morsels_executed)


# ----------------------------------------------------------------------
# Adaptive morsel granularity
# ----------------------------------------------------------------------


class TestAdaptiveShards:
    def test_small_input_collapses_to_one_shard(self):
        config = ParallelConfig(workers=4)
        assert adaptive_shards(config, [{Tup(1): 1}]) == 1
        assert adaptive_shards(config, [{}]) == 1

    def test_large_input_keeps_full_fanout(self):
        config = ParallelConfig(workers=2)
        big = {Tup(i): 1 for i in range(config.num_shards
                                        * MORSEL_MIN_ROWS)}
        assert adaptive_shards(config, [big]) == config.num_shards

    def test_intermediate_input_scales_proportionally(self):
        config = ParallelConfig(workers=4)  # ceiling 8
        rows = {Tup(i): 1 for i in range(MORSEL_MIN_ROWS * 3)}
        assert adaptive_shards(config, [rows]) == 3

    def test_floor_of_one_splits_as_finely_as_the_input_allows(self):
        config = ParallelConfig(workers=4, min_morsel_rows=1)
        rows = {Tup(i): 1 for i in range(config.num_shards)}
        assert adaptive_shards(config, [rows]) == config.num_shards
        # fewer distinct rows than shards: empty shards are pointless
        assert adaptive_shards(config, [{Tup(1): 1, Tup(2): 1}]) == 2

    def test_cardinality_sums_across_slots(self):
        config = ParallelConfig(workers=4)
        half = {Tup(i): 1 for i in range(MORSEL_MIN_ROWS)}
        assert adaptive_shards(config, [half, half]) == 2

    def test_end_to_end_small_input_runs_one_morsel(self):
        stats = EngineStats()
        evaluate(_expr(), _db(), cache=None, engine="parallel",
                 workers=2, parallel_threshold=0.0, stats=stats)
        assert stats.morsels_executed == 1
        forced = EngineStats()
        evaluate(_expr(), _db(), cache=None, engine="parallel",
                 workers=2, parallel_threshold=0.0, min_morsel_rows=1,
                 stats=forced)
        assert forced.morsels_executed > 1


# ----------------------------------------------------------------------
# bytes_shipped accounting
# ----------------------------------------------------------------------


class TestBytesShipped:
    def test_thread_backend_ships_nothing(self):
        stats = EngineStats()
        evaluate(_expr(), _db(), cache=None, engine="parallel",
                 workers=2, parallel_threshold=0.0, min_morsel_rows=1,
                 stats=stats)
        assert stats.bytes_shipped == 0

    @fork_only
    def test_process_backend_counts_both_directions(self):
        stats = EngineStats()
        evaluate(_expr(), _db(), cache=None, engine="parallel",
                 workers=2, parallel_backend="process",
                 parallel_threshold=0.0, min_morsel_rows=1,
                 stats=stats)
        # at least one blob out per input slot and one back per morsel
        assert stats.bytes_shipped > 0

    def test_explain_footer_shows_new_counters(self):
        text = explain_physical(_expr(), _db(), engine="parallel",
                                workers=2, parallel_threshold=0.0)
        assert "bytes shipped" in text
        assert "segment cache" in text


# ----------------------------------------------------------------------
# Lazy Tup hashes
# ----------------------------------------------------------------------


class TestTupHashCache:
    def test_hash_is_lazy_and_cached(self):
        tup = Tup(1, "a")
        assert tup._hash is None
        value = hash(tup)
        assert tup._hash == value
        assert hash(tup) == value  # second call serves the slot

    def test_cached_hash_equals_fresh_value(self):
        nested = Tup(1, Tup(2, "x"), Bag.from_counts({Tup(3): 2}))
        warmed = hash(nested)
        fresh = Tup(1, Tup(2, "x"), Bag.from_counts({Tup(3): 2}))
        assert hash(fresh) == warmed
        assert fresh == nested

    def test_concat_result_hashes_fresh(self):
        left, right = Tup(1, 2), Tup(3)
        hash(left), hash(right)
        joined = left.concat(right)
        assert joined == Tup(1, 2, 3)
        assert hash(joined) == hash(Tup(1, 2, 3))

    def test_pickle_round_trip_before_and_after_hashing(self):
        cold = Tup(1, Bag.from_counts({Tup(2, "y"): 3}))
        thawed_cold = pickle.loads(pickle.dumps(cold))
        assert thawed_cold == cold
        assert hash(thawed_cold) == hash(cold)
        warm = Tup(1, Bag.from_counts({Tup(2, "y"): 3}))
        hash(warm)
        thawed_warm = pickle.loads(pickle.dumps(warm))
        assert thawed_warm == warm
        assert hash(thawed_warm) == hash(warm)

    def test_codec_decode_hashes_consistently(self):
        # decoding inserts the value into a dict, which warms its
        # slot; what matters is that the recomputed hash matches one
        # computed from a constructor-built twin
        original = Tup(1, Tup(2, "x"))
        decoded = next(iter(decode_shard(encode_shard({original: 1}))))
        assert hash(decoded) == hash(original)
        assert decoded == original

    def test_governed_parallel_run_unaffected_by_hash_cache(self):
        # hashes are computed inside split/merge/join paths; a governed
        # run over warmed values must behave identically
        db = _db()
        for value in db["R"]:
            hash(value)
        governor = ResourceGovernor(Limits(max_steps=10 ** 6))
        result = evaluate(_expr(), db, cache=None, engine="parallel",
                          workers=2, parallel_threshold=0.0,
                          governor=governor)
        assert result == evaluate(_expr(), db, cache=None)
