"""Tests for the columnar runtime and the plan-to-closure codegen.

Three layers:

* **representation** — ``to_columnar``/``from_columnar`` round-trips
  (including empty bags and multiplicities past 2^16) and the bulk
  kernels of :mod:`repro.engine.columnar` pinned one by one;
* **compiler** — segment fusion, super-kernel pattern matches
  (sym-diff-dedup, in-place dedup-union, scale folding), barrier
  fallbacks, SharedScan transparency, plan-cache key isolation from
  the stream plans, and the ``:explain`` counters;
* **mutation teeth** — the monus count-clamp, the join multiplicity
  product, and the dedup count-collapse each get a deliberately
  broken kernel; the ``oracle`` vs ``engine-codegen`` differential
  must catch every mutant within 10 generated cases (emitted segments
  call kernels through the module object, so patching
  ``repro.engine.columnar`` attributes reaches inside compiled
  closures).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.engine.columnar as columnar
from repro.core.bag import Bag, Tup
from repro.core.errors import BagTypeError
from repro.core.expr import (
    AdditiveUnion, Attribute, Cartesian, Dedup, Lam, Powerset, Select,
    Subtraction, Var, var,
)
from repro.core.types import TupleType
from repro.engine import (
    EngineStats, PlanCache, evaluate, explain_physical, plan_for,
)
from repro.engine.codegen import CodegenPlan, compile_codegen
from repro.engine.columnar import (
    ColumnarBag, c_add_union, c_dedup, c_hash_join, c_map, c_max_union,
    c_min_intersect, c_monus, c_product, c_scale, c_scale_dict,
    c_select, c_sym_diff_dedup, columnar_counts, from_columnar,
    sum_counts, to_columnar,
)
from repro.planner.pipeline import _combined_tag
from repro.planner import PassConfig
from repro.testkit import Case, Harness, generate_case
from repro.workloads import random_multigraph, random_relation
from tests.strategies import input_bags


def _ab(a_count, b_count):
    counts = {}
    if a_count:
        counts[Tup("a",)] = a_count
    if b_count:
        counts[Tup("b",)] = b_count
    return counts


# ----------------------------------------------------------------------
# Representation round-trips
# ----------------------------------------------------------------------

class TestColumnarRoundTrip:
    def test_empty_bag(self):
        col = to_columnar(Bag([]))
        assert len(col) == 0
        assert from_columnar(col) == Bag([])

    def test_small_bag(self):
        bag = Bag.from_counts({Tup("a", "b"): 3, Tup("b", "a"): 1})
        assert from_columnar(to_columnar(bag)) == bag

    def test_multiplicity_past_2_16(self):
        # counts are unbounded ints, not fixed-width column cells
        bag = Bag.from_counts({Tup("a",): 2 ** 16 + 7,
                               Tup("b",): 2 ** 40})
        round_tripped = from_columnar(to_columnar(bag))
        assert round_tripped == bag
        assert round_tripped.multiplicity(Tup("a",)) == 2 ** 16 + 7

    @given(input_bags())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_is_identity(self, bag):
        assert from_columnar(to_columnar(bag)) == bag

    def test_to_columnar_rejects_non_bags(self):
        with pytest.raises(BagTypeError):
            to_columnar([("a", 1)])

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ColumnarBag([Tup("a",)], [1, 2])

    def test_non_distinct_columns_sum_on_materialisation(self):
        col = ColumnarBag([Tup("a",), Tup("a",)], [2, 3],
                          distinct=False)
        assert columnar_counts(col) == {Tup("a",): 5}
        assert from_columnar(col) == Bag.from_counts({Tup("a",): 5})


# ----------------------------------------------------------------------
# Kernels, pinned one by one
# ----------------------------------------------------------------------

class TestKernels:
    def test_monus_clamps_at_zero_and_drops_rows(self):
        assert c_monus(_ab(5, 2), _ab(3, 2)) == _ab(2, 0)
        assert c_monus(_ab(1, 0), _ab(4, 0)) == {}

    def test_monus_does_not_mutate_inputs(self):
        left, right = _ab(5, 2), _ab(3, 1)
        c_monus(left, right)
        assert left == _ab(5, 2) and right == _ab(3, 1)

    def test_min_intersect(self):
        assert c_min_intersect(_ab(5, 2), _ab(3, 0)) == _ab(3, 0)

    def test_max_union(self):
        assert c_max_union(_ab(5, 2), _ab(3, 7)) == _ab(5, 7)

    def test_add_union(self):
        assert c_add_union(_ab(5, 2), _ab(3, 7)) == _ab(8, 9)

    def test_dedup_collapses_the_count_column(self):
        # not just repeats: a count of 40 collapses to 1 too
        assert c_dedup([Tup("a",), Tup("a",), Tup("b",)]) == _ab(1, 1)
        assert c_dedup(_ab(40, 2)) == _ab(1, 1)

    def test_sym_diff_dedup_matches_composed_kernels(self):
        left = {Tup(x,): (ord(x) % 5) + 1 for x in "abcdef"}
        right = {Tup(x,): (ord(x) % 3) + 1 for x in "defghi"}
        composed = c_dedup(c_add_union(c_monus(left, right),
                                       c_monus(right, left)))
        assert c_sym_diff_dedup(left, right) == composed

    def test_scale(self):
        assert c_scale([1, 2, 3], 4) == [4, 8, 12]
        assert c_scale_dict(_ab(1, 2), 3) == _ab(3, 6)

    def test_map_and_select(self):
        values = [Tup("a", "b"), Tup("b", "a")]
        assert c_map(values, lambda t: Tup(t.items()[1])) == \
            [Tup("b",), Tup("a",)]
        kept_v, kept_c = c_select(values, [2, 3],
                                  lambda t: t.items()[0] == "a")
        assert kept_v == [Tup("a", "b")] and kept_c == [2]

    def test_product_multiplies_counts_and_requires_tups(self):
        out_v, out_c = c_product([Tup("a",)], [2], {Tup("b",): 3})
        assert out_v == [Tup("a", "b")] and out_c == [6]
        with pytest.raises(BagTypeError):
            c_product(["a"], [1], {Tup("b",): 1})

    def test_hash_join_multiplies_counts(self):
        out_v, out_c = c_hash_join(
            [Tup("a", "b")], [2], {Tup("b", "c"): 3},
            probe_key=lambda t: t.items()[1],
            build_key=lambda t: t.items()[0],
            probe_is_left=True)
        assert out_v == [Tup("a", "b", "b", "c")] and out_c == [6]

    def test_quadratic_kernels_tick(self):
        ticks = []
        build = {Tup(str(i),): 1 for i in range(columnar.TICK_CHUNK)}
        c_product([Tup("x",)] * 3, [1] * 3, build,
                  tick=lambda: ticks.append(1))
        assert ticks  # at least one chunk boundary crossed

    def test_sum_counts_sums_repeats(self):
        assert sum_counts([Tup("a",), Tup("a",)], [2, 5]) == \
            {Tup("a",): 7}


# ----------------------------------------------------------------------
# Compiler: fusion, super-kernels, barriers, cache keys
# ----------------------------------------------------------------------

def _sym_diff_chain(depth):
    x, y = var("X"), var("Y")
    for _ in range(depth):
        x = Dedup(AdditiveUnion(Subtraction(x, y), Subtraction(y, x)))
    return x


def _union_dedup_cascade(levels):
    x = var("A0")
    for i in range(levels):
        x = Dedup(AdditiveUnion(x, var(f"A{(i % 2) + 1}")))
    return x


def _scale_cascade(depth):
    x = var("X")
    for _ in range(depth):
        x = AdditiveUnion(x, x)
    return x


class TestCodegenCompiler:
    X = random_multigraph(10, 300, seed=1)
    Y = random_multigraph(10, 300, seed=2)

    def _parity(self, expr, database, **kwargs):
        stats = EngineStats()
        fused = evaluate(expr, database, engine="codegen", cache=None,
                         stats=stats, **kwargs)
        streamed = evaluate(expr, database, engine="physical",
                            cache=None, **kwargs)
        assert fused == streamed
        return stats

    def test_sym_diff_chain_fuses_to_super_kernel(self):
        expr = _sym_diff_chain(3)
        plan = plan_for(expr, {"X": self.X, "Y": self.Y},
                        engine="codegen")
        assert isinstance(plan, CodegenPlan)
        kernels = [k for segment in plan.segments
                   for k in segment.kernels]
        assert "sym-diff-dedup" in kernels
        assert not plan.barriers
        stats = self._parity(expr, {"X": self.X, "Y": self.Y})
        assert stats.fused_segments > 0
        assert stats.barrier_fallbacks == 0

    def test_union_dedup_cascade_merges_in_place(self):
        expr = _union_dedup_cascade(6)
        database = {f"A{i}": random_relation(12, arity=2, seed=20 + i)
                    for i in range(3)}
        plan = plan_for(expr, database, engine="codegen")
        kernels = [k for segment in plan.segments
                   for k in segment.kernels]
        assert "dedup-union" in kernels
        self._parity(expr, database)

    def test_scale_cascade_folds_to_one_factor(self):
        expr = _scale_cascade(4)
        plan = plan_for(expr, {"X": self.X}, engine="codegen")
        source = "".join(segment.source
                         for segment in plan.segments)
        # 2^4 = 16 in a single scale call, not four doublings
        assert "16" in source
        assert sum(segment.kernels.count("scale")
                   for segment in plan.segments) <= 1
        self._parity(expr, {"X": self.X})

    def test_powerset_is_a_barrier_fallback(self):
        expr = Dedup(Powerset(var("S")))
        database = {"S": random_relation(3, arity=1, seed=5)}
        stats = self._parity(expr, database)
        assert stats.barrier_fallbacks == 1

    def test_whole_plan_barrier_still_streams(self):
        expr = Powerset(var("S"))
        database = {"S": random_relation(3, arity=1, seed=5)}
        plan = plan_for(expr, database, engine="codegen")
        assert isinstance(plan, CodegenPlan)
        assert plan.root_segment is None
        stats = self._parity(expr, database)
        assert stats.barrier_fallbacks == 1
        assert stats.fused_segments == 0

    def test_sym_diff_super_kernel_absorbs_the_sharing(self):
        # every chain level mentions the previous level twice, but the
        # matched super-kernel reads each level exactly once — the
        # memo materialises shared levels without ever re-reading them
        expr = _sym_diff_chain(4)
        stats = self._parity(expr, {"X": self.X, "Y": self.Y})
        assert stats.shared_materialized > 0
        assert stats.shared_reused == 0
        assert stats.kernel_counts.get("sym-diff-dedup") == 4

    def test_shared_subtrees_materialise_once(self):
        # without a dedup on top the super-kernel cannot fire, so the
        # repeated subtree really is read twice — once materialised,
        # once served from the run's memo
        shared = Subtraction(var("X"), var("Y"))
        expr = AdditiveUnion(Subtraction(shared, var("Y")),
                             Subtraction(var("Y"), shared))
        stats = self._parity(expr, {"X": self.X, "Y": self.Y})
        assert stats.shared_materialized == 1
        assert stats.shared_reused == 1

    def test_scan_views_are_not_mutated(self):
        # scans hand out the bag's internal dict uncopied; an in-place
        # merge against a scan base must copy first
        bag = Bag.from_counts({Tup("a", "b"): 1, Tup("c", "d"): 1})
        other = random_relation(6, arity=2, seed=9)
        before = dict(bag._counts)
        expr = Dedup(AdditiveUnion(Dedup(var("B")), var("C")))
        self._parity(expr, {"B": bag, "C": other})
        assert bag._counts == before

    def test_opt_levels_below_3_keep_the_stream_plan(self):
        from repro.engine.lower import PhysicalPlan
        expr = _sym_diff_chain(2)
        database = {"X": self.X, "Y": self.Y}
        for level in (0, 1, 2):
            plan = plan_for(expr, database, engine="codegen",
                            opt_level=level)
            assert isinstance(plan, PhysicalPlan)
            assert not isinstance(plan, CodegenPlan)
        # and without engine="codegen" the pass never runs, even at 3
        plan = plan_for(expr, database, opt_level=3)
        assert not isinstance(plan, CodegenPlan)

    def test_stream_plans_identical_with_codegen_available(self):
        # opt 0/1/2 plans must be byte-identical to the stream
        # pipeline's output: the codegen stage may only ever add a
        # trailing compilation step, never perturb lowering
        expr = _sym_diff_chain(2)
        database = {"X": self.X, "Y": self.Y}
        for level in (0, 1, 2):
            stream = plan_for(expr, database, opt_level=level)
            via_codegen_engine = plan_for(expr, database,
                                          engine="codegen",
                                          opt_level=level)
            assert stream.render() == via_codegen_engine.render()

    def test_cache_tag_isolates_codegen_keys(self):
        config = PassConfig.for_level(3)
        assert _combined_tag(config, None, codegen=True) != \
            _combined_tag(config, None, codegen=False)

    def test_shared_cache_never_crosses_engines(self):
        cache = PlanCache(capacity=8)
        stats = EngineStats()
        expr = _sym_diff_chain(2)
        database = {"X": self.X, "Y": self.Y}
        first = evaluate(expr, database, engine="codegen", cache=cache,
                         stats=stats)
        assert stats.cache_misses == 1
        repeat = evaluate(expr, database, engine="codegen",
                          cache=cache, stats=stats)
        assert repeat == first
        assert stats.cache_hits == 1
        crossed = evaluate(expr, database, engine="physical",
                           cache=cache, stats=stats)
        assert crossed == first
        assert stats.cache_misses == 2  # isolated key: no false hit
        assert stats.cache_hits == 1

    def test_explain_reports_fusion_counters(self):
        text = explain_physical(_sym_diff_chain(2), engine="codegen",
                                X=self.X, Y=self.Y)
        assert "-- codegen --" in text
        assert "fused segments" in text
        assert "barrier fallbacks" in text
        assert "sym-diff-dedup" in text

    def test_compile_codegen_render_lists_segments(self):
        plan = plan_for(_sym_diff_chain(2), {"X": self.X, "Y": self.Y},
                        engine="codegen")
        rendered = plan.render()
        assert "fused segment(s)" in rendered
        assert "-- lowered plan --" in rendered


# ----------------------------------------------------------------------
# Mutation teeth: broken kernels must be caught within 10 cases
# ----------------------------------------------------------------------

def _detect(patches, cases=10, case_for=None):
    """Run oracle vs engine-codegen over a fixed generated stream with
    columnar kernels mutated (``patches`` maps kernel name to a
    ``patch(original)`` wrapper); return the 1-based index of the
    first mismatch, or None if the mutants survive all ``cases``.
    ``case_for(index)`` overrides the default mixed-fragment stream
    (returning None skips an index)."""
    originals = {name: getattr(columnar, name) for name in patches}
    for name, patch in patches.items():
        setattr(columnar, name, patch(originals[name]))
    try:
        harness = Harness(backends=("oracle", "engine-codegen"),
                          metamorphic=False)
        for index in range(cases):
            if case_for is not None:
                case = case_for(index)
                if case is None:
                    continue
            else:
                case = generate_case(0, index, fragment="mixed")
            report = harness.run_case(case)
            if report.mismatches:
                return index + 1
        return None
    finally:
        for name, original in originals.items():
            setattr(columnar, name, original)


def _dedup_case(index):
    """``eps(A (+) (A - B))`` over two same-typed generated relations:
    every value surviving the monus repeats one of A's, so the value
    column reaching the dedup kernel carries structural repeats (a
    plain ``R (+) R`` would be rewritten into a multiplicity scale,
    whose dedup path never sees them) and an occurrence-counting
    mutant is visible immediately."""
    base = generate_case(0, index, fragment="balg1")
    by_type = {}
    for name in sorted(base.database):
        pair = by_type.setdefault(repr(base.schema[name]), [])
        pair.append(name)
        if len(pair) == 2:
            a, b = pair
            expr = Dedup(AdditiveUnion(
                Var(a), Subtraction(Var(a), Var(b))))
            return Case(schema=base.schema, database=base.database,
                        expr=expr, fragment="balg1")
    return None


def _sym_diff_case(index):
    """``eps((A - B) (+) (B - A))`` over two same-typed generated
    relations — exactly the shape the compiler rewrites into the
    ``c_sym_diff_dedup`` super-kernel."""
    base = generate_case(0, index, fragment="balg1")
    by_type = {}
    for name in sorted(base.database):
        pair = by_type.setdefault(repr(base.schema[name]), [])
        pair.append(name)
        if len(pair) == 2:
            a, b = pair
            expr = Dedup(AdditiveUnion(
                Subtraction(Var(a), Var(b)),
                Subtraction(Var(b), Var(a))))
            return Case(schema=base.schema, database=base.database,
                        expr=expr, fragment="balg1")
    return None


def _join_case(index):
    """A join-shaped case over a generated database: the equality
    crosses the product boundary, so lowering may fuse it to a hash
    join (or keep the nested-loop product under the threshold) — the
    multiplicity-product mutation is visible either way."""
    base = generate_case(0, index, fragment="balg1")
    flat = [name for name in sorted(base.database)
            if isinstance(getattr(base.schema[name], "element", None),
                          TupleType)]
    if len(flat) < 2:
        return None
    r1, r2 = flat[:2]
    a1 = base.schema[r1].element.arity
    expr = Select(Lam("t", Attribute(Var("t"), 1)),
                  Lam("t", Attribute(Var("t"), a1 + 1)),
                  Cartesian(Var(r1), Var(r2)))
    return Case(schema=base.schema, database=base.database,
                expr=expr, fragment="balg1")


class TestMutationDetection:
    def test_monus_without_count_clamp_is_caught(self):
        def patch(orig):
            def patched(left, right):
                get = right.get
                # keeps zero/negative rows at count 1
                return {value: max(1, count - get(value, 0))
                        for value, count in left.items()}
            return patched

        assert _detect({"c_monus": patch}) is not None

    def test_join_dropping_multiplicity_product_is_caught(self):
        # the same semantic mutation on both members of the join
        # family (the build side's counts flattened to 1), driven by
        # join-shaped cases over generated databases
        def patch(orig):
            def patched(probe_values, probe_counts, build, *rest,
                        **kw):
                flat_build = dict.fromkeys(build, 1)
                return orig(probe_values, probe_counts, flat_build,
                            *rest, **kw)
            return patched

        assert _detect({"c_hash_join": patch, "c_product": patch},
                       case_for=_join_case) is not None

    def test_dedup_keeping_counts_is_caught(self):
        def patch(orig):
            def patched(values):
                out = {}
                get = out.get
                # occurrence-counting instead of count collapse
                for value in values:
                    out[value] = get(value, 0) + 1
                return out
            return patched

        assert _detect({"c_dedup": patch},
                       case_for=_dedup_case) is not None

    def test_sym_diff_super_kernel_mutant_is_caught(self):
        def patch(orig):
            def patched(left, right):
                out = orig(left, right)
                # forgets the right-only values
                return {value: 1 for value in out if value in left}
            return patched

        assert _detect({"c_sym_diff_dedup": patch},
                       case_for=_sym_diff_case) is not None
