"""Tests for the staged planner: pipeline parity across opt levels,
the shared estimator, pass-manager termination, cache-key isolation,
and the CLI's planner surface (PR 5's tentpole)."""

import pytest

from repro.core.bag import Bag, Tup
from repro.core.errors import BudgetExceeded, GovernedError
from repro.core.eval import Evaluator, evaluate
from repro.core.expr import (
    AdditiveUnion, Attribute, BagDestroy, Cartesian, Const, Dedup,
    Intersection, Lam, Map, MaxUnion, Powerset, Select, Subtraction,
    Tupling, Var, var,
)
from repro.core.nest import Nest, Unnest
from repro.engine import PlanCache
from repro.engine import evaluate as engine_evaluate
from repro.engine.physical import (
    HashJoin, HashUnion, MultiplicityScale, NestedLoopProduct,
    SharedScan, StreamingSelect,
)
from repro.guard import Limits, ResourceGovernor
from repro import planner
from repro.planner import (
    ALL_RULES, CompiledPlan, FixpointRewriter, PassConfig, PlanContext,
    Rule, compile as planner_compile,
)

# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------

_R = Bag([Tup("a", 1), Tup("a", 1), Tup("b", 2), Tup("c", 3)])
_S = Bag([Tup("a", 10), Tup("b", 20), Tup("b", 20), Tup("d", 40)])
_FLAT = Bag.of("x", "x", "y", "z")

_JOIN = Select(
    Lam("t", Attribute(Var("t"), 1)),
    Lam("t", Attribute(Var("t"), 3)),
    Cartesian(var("R"), var("S")), op="eq")

_BATTERY = [
    (var("B") + var("B"), {"B": _FLAT}),
    (Dedup(Dedup(var("B"))), {"B": _FLAT}),
    ((var("B") + Const(Bag([]))) - var("B"), {"B": _FLAT}),
    (MaxUnion(var("B"), var("B")), {"B": _FLAT}),
    (Intersection(var("R"), var("R")), {"R": _R}),
    (_JOIN, {"R": _R, "S": _S}),
    (Map(Lam("t", Attribute(Var("t"), 1)), var("R") * var("S")),
     {"R": _R, "S": _S}),
    (BagDestroy(Powerset(var("B"))), {"B": Bag.of("p", "q")}),
    (Nest(var("R"), 2), {"R": _R}),
    (Unnest(Nest(var("R"), 2), 2), {"R": _R}),
]


def _oracle(expr, bindings):
    return Evaluator().run(expr, bindings)


# ----------------------------------------------------------------------
# Pipeline parity: every opt level and engine agrees with the oracle
# ----------------------------------------------------------------------

class TestPipelineParity:
    @pytest.mark.parametrize("opt_level", [0, 1, 2])
    def test_physical_engine_matches_oracle_at_every_level(
            self, opt_level):
        for expr, bindings in _BATTERY:
            expected = _oracle(expr, bindings)
            actual = engine_evaluate(expr, bindings, cache=None,
                                     opt_level=opt_level)
            assert actual == expected, (opt_level, expr)

    @pytest.mark.parametrize("opt_level", [0, 2])
    def test_tree_engine_matches_oracle_at_every_level(self, opt_level):
        for expr, bindings in _BATTERY:
            expected = _oracle(expr, bindings)
            actual = evaluate(expr, bindings, engine="tree",
                              opt_level=opt_level)
            assert actual == expected, (opt_level, expr)

    def test_tree_engine_defaults_to_opt0(self):
        # the oracle evaluates the query exactly as written: B - B
        # stays a Subtraction node rather than folding away
        compiled = planner_compile(
            var("B") - var("B"),
            PlanContext(engine="tree", config=PassConfig.for_level(0)))
        assert compiled.logical == var("B") - var("B")
        assert compiled.physical is None

    def test_opt2_rewrites_self_subtraction(self):
        compiled = planner_compile(
            var("B") - var("B"),
            PlanContext(engine="tree", config=PassConfig.for_level(2)))
        assert compiled.logical == Const(Bag([]))
        firings = compiled.report.firing_counts()
        assert firings.get("self-subtraction") == 1

    def test_compiled_plan_provenance(self):
        compiled = planner_compile(
            Dedup(Dedup(var("B"))),
            PlanContext(engine="physical",
                        config=PassConfig.for_level(1)))
        assert isinstance(compiled, CompiledPlan)
        assert compiled.source == Dedup(Dedup(var("B")))
        assert compiled.logical == Dedup(var("B"))  # normalize fired
        assert compiled.physical is not None
        assert compiled.engine == "physical"
        stages = [record.stage for record in compiled.report.stages]
        assert stages == ["normalize", "rewrite", "lower"]


# ----------------------------------------------------------------------
# Satellite: the single shared estimator
# ----------------------------------------------------------------------

class TestSharedEstimator:
    def test_optimizer_and_engine_import_the_same_estimator(self):
        import importlib
        lower_module = importlib.import_module("repro.engine.lower")
        card_module = importlib.import_module(
            "repro.optimizer.cardinality")
        assert card_module.estimate is planner.estimate
        assert lower_module.estimate is planner.estimate
        assert card_module.BagStats is planner.BagStats

    def test_optimizer_and_planner_cost_models_agree(self):
        from repro.optimizer import estimated_cost as optimizer_cost
        for expr, _ in _BATTERY:
            assert optimizer_cost(expr) == planner.estimated_cost(expr)

    def test_estimates_agree_operator_by_operator(self):
        """Both import paths produce identical numbers for every
        operator on a fixed fixture set."""
        from repro.optimizer.cardinality import estimate as via_optimizer
        from repro.engine.lower import estimate as via_engine
        statistics = {"R": planner.stats_of(_R),
                      "S": planner.stats_of(_S),
                      "B": planner.stats_of(_FLAT)}
        fixtures = [
            var("R") + var("S"),
            var("R") + var("R"),
            var("R") - var("S"),
            MaxUnion(var("R"), var("S")),
            Intersection(var("R"), var("S")),
            var("R") * var("S"),
            Map(Lam("t", Attribute(Var("t"), 1)), var("R")),
            Select(Lam("t", Attribute(Var("t"), 1)),
                   Lam("t", Const("a")), var("R"), op="eq"),
            Dedup(var("B")),
            Powerset(var("B")),
            BagDestroy(Powerset(var("B"))),
            Nest(var("R"), 2),
            Unnest(Nest(var("R"), 2), 2),
        ]
        for expr in fixtures:
            left = via_optimizer(expr, statistics)
            right = via_engine(expr, statistics)
            assert left == right, expr
            assert left.cardinality == right.cardinality
            assert left.distinct == right.distinct


# ----------------------------------------------------------------------
# Satellite: pass-manager termination
# ----------------------------------------------------------------------

def _commute_union(expr):
    if isinstance(expr, AdditiveUnion):
        return AdditiveUnion(expr.right, expr.left)
    return None


def _swap_to_max(expr):
    if isinstance(expr, AdditiveUnion):
        return MaxUnion(expr.left, expr.right)
    return None


def _swap_to_plus(expr):
    if isinstance(expr, MaxUnion):
        return AdditiveUnion(expr.left, expr.right)
    return None


_OSCILLATORS = (
    Rule("swap-to-max", _swap_to_max, "rewrite", "unsound test rule"),
    Rule("swap-to-plus", _swap_to_plus, "rewrite",
         "unsound test rule"),
)


class TestFixpointTermination:
    def test_oscillating_pair_is_cut_off_cleanly(self):
        expr = var("A") + var("B")
        rewriter = FixpointRewriter(_OSCILLATORS, max_passes=7)
        result = rewriter.rewrite(expr)
        # no exception: the bound fires, the last tree comes back
        assert rewriter.converged is False
        assert rewriter.passes_run == 7
        assert isinstance(result, (AdditiveUnion, MaxUnion))

    def test_single_commuting_rule_is_cut_off(self):
        rule = Rule("commute", _commute_union, "rewrite",
                    "unsound test rule")
        rewriter = FixpointRewriter((rule,), max_passes=4)
        rewriter.rewrite(var("A") + var("B"))
        assert rewriter.converged is False
        assert rewriter.firings["commute"] == 4

    def test_fixpoint_is_governor_ticked(self):
        governor = ResourceGovernor(Limits(max_steps=3))
        governor.ensure_started()
        rewriter = FixpointRewriter(_OSCILLATORS, max_passes=100,
                                    governor=governor)
        with pytest.raises(BudgetExceeded):
            rewriter.rewrite(var("A") + var("B"))

    def test_governed_compilation_through_the_pipeline(self):
        """An adversarial rule set under a step budget degrades into
        the structured governed error, not a hang."""
        governor = ResourceGovernor(Limits(max_steps=5))
        context = PlanContext(engine="tree", governor=governor,
                              config=PassConfig.for_level(2))
        with pytest.raises(GovernedError):
            planner_compile(var("A") + var("B"), context,
                            extra_rules=_OSCILLATORS)

    def test_converging_rules_report_convergence(self):
        compiled = planner_compile(
            Dedup(Dedup(Dedup(var("B")))),
            PlanContext(engine="tree", config=PassConfig.for_level(1)))
        record = compiled.report.stage("normalize")
        assert record.converged is True
        assert record.firings["collapse-dedup"] == 2

    def test_rebuild_recurses_into_nest_and_unnest(self):
        expr = Unnest(Nest(Dedup(Dedup(var("R"))), 2), 2)
        compiled = planner_compile(
            expr, PlanContext(engine="tree",
                              config=PassConfig.for_level(1)))
        assert compiled.logical == Unnest(Nest(Dedup(var("R")), 2), 2)


# ----------------------------------------------------------------------
# Satellite: cache keys include the pass configuration
# ----------------------------------------------------------------------

class TestCacheKeysIncludePassConfig:
    def test_opt0_and_opt2_never_collide(self):
        cache = PlanCache(capacity=16)
        bindings = {"R": _R, "S": _S}
        plans = {}
        for level in (0, 1, 2):
            ctx = PlanContext.for_bindings(
                bindings, engine="physical", cache=cache,
                config=PassConfig.for_level(level))
            plans[level] = planner_compile(_JOIN, ctx).physical
        assert plans[0] is not plans[1]
        assert plans[0] is not plans[2]
        # the opt-0 plan is naive; the cost-based ones fused the join
        assert isinstance(plans[0].root, StreamingSelect)
        assert isinstance(plans[1].root, HashJoin)
        # re-compilation per level hits the right entry
        for level in (0, 1, 2):
            ctx = PlanContext.for_bindings(
                bindings, engine="physical", cache=cache,
                config=PassConfig.for_level(level))
            again = planner_compile(_JOIN, ctx)
            assert again.cache_hit is True
            assert again.physical is plans[level]

    def test_cache_tags_differ_per_level_and_toggle(self):
        tags = {PassConfig.for_level(level).cache_tag()
                for level in (0, 1, 2)}
        assert len(tags) == 3
        toggled = PassConfig.for_level(2, disabled=("fuse-maps",))
        assert toggled.cache_tag() != PassConfig.for_level(2).cache_tag()
        # toggle normalization is order- and duplicate-insensitive
        assert PassConfig.for_level(
            2, disabled=("a", "b", "b")).cache_tag() == \
            PassConfig.for_level(2, disabled=("b", "a")).cache_tag()

    def test_engine_stats_count_hits_and_misses(self):
        from repro.engine import EngineStats
        cache = PlanCache(capacity=8)
        stats = EngineStats()
        bindings = {"B": _FLAT}
        expr = Dedup(var("B"))
        for _ in range(2):
            ctx = PlanContext.for_bindings(
                bindings, engine="physical", cache=cache,
                engine_stats=stats, config=PassConfig.for_level(1))
            planner_compile(expr, ctx)
        assert stats.cache_misses == 1
        assert stats.cache_hits == 1
        assert stats.lowerings == 1


# ----------------------------------------------------------------------
# Opt-level semantics in the lowered plans
# ----------------------------------------------------------------------

class TestOptLevelPlanShapes:
    def _plan(self, expr, bindings, level):
        ctx = PlanContext.for_bindings(
            bindings, engine="physical",
            config=PassConfig.for_level(level))
        return planner_compile(expr, ctx).physical

    def test_opt0_skips_multiplicity_scale(self):
        expr = var("B") + var("B")
        naive = self._plan(expr, {"B": _FLAT}, 0)
        tuned = self._plan(expr, {"B": _FLAT}, 1)
        assert isinstance(naive.root, HashUnion)
        assert isinstance(tuned.root, MultiplicityScale)

    def test_opt0_skips_join_fusion(self):
        naive = self._plan(_JOIN, {"R": _R, "S": _S}, 0)
        assert isinstance(naive.root, StreamingSelect)
        assert isinstance(naive.root.child, NestedLoopProduct)

    def test_opt0_skips_shared_scans(self):
        shared = Dedup(var("R") * var("S"))
        expr = Subtraction(shared, Dedup(shared))
        naive = self._plan(expr, {"R": _R, "S": _S}, 0)
        tuned = self._plan(expr, {"R": _R, "S": _S}, 1)

        def count(node, kind):
            total = isinstance(node, kind)
            for child in getattr(node, "children", lambda: [])():
                total += count(child, kind)
            return total

        assert count(naive.root, SharedScan) == 0
        assert count(tuned.root, SharedScan) >= 1

    def test_pass_toggle_disables_one_rule_only(self):
        expr = Dedup(Dedup(var("B") - var("B")))
        config = PassConfig.for_level(2, disabled=("self-subtraction",))
        compiled = planner_compile(
            expr, PlanContext(engine="tree", config=config))
        # collapse-dedup still fired; self-subtraction did not
        assert compiled.logical == Dedup(var("B") - var("B"))

    def test_stage_toggle_disables_whole_stage(self):
        expr = Dedup(Dedup(var("B")))
        config = PassConfig.for_level(2, disabled=("normalize",))
        compiled = planner_compile(
            expr, PlanContext(engine="tree", config=config))
        # collapse-dedup lives in the normalize stage
        assert compiled.logical == expr


# ----------------------------------------------------------------------
# Reports and the CLI surface
# ----------------------------------------------------------------------

class TestReportsAndCli:
    def test_stages_view_lists_each_stage(self):
        compiled = planner_compile(
            Dedup(Dedup(var("B") - var("B"))),
            PlanContext(engine="physical",
                        config=PassConfig.for_level(2)),
            trees=True)
        rendered = compiled.report.render()
        assert "[normalize]" in rendered
        assert "[rewrite]" in rendered
        assert "[lower]" in rendered
        assert "collapse-dedup x1" in rendered
        assert "cost=" in rendered

    def test_cli_explain_has_stages_section(self):
        import io
        from repro.cli import Session
        out = io.StringIO()
        session = Session(out=out)
        session.handle("B = {{['a'], ['a'], ['b']}}")
        session.handle(":explain eps(eps(B))")
        text = out.getvalue()
        assert "-- logical --" in text
        assert "-- stages --" in text
        assert "-- physical --" in text
        assert "[normalize]" in text

    def test_cli_passes_listing_and_toggle(self):
        import io
        from repro.cli import Session
        out = io.StringIO()
        session = Session(out=out)
        session.handle(":passes")
        listing = out.getvalue()
        assert "opt-level 1" in listing
        assert "collapse-dedup" in listing
        assert "fuse-maps" in listing
        session.handle(":passes level 2")
        session.handle(":passes off fuse-maps")
        assert session.opt_level == 2
        assert session.pass_toggles == {"fuse-maps": False}
        out.truncate(0)
        out.seek(0)
        session.handle(":passes")
        toggled = out.getvalue()
        assert "opt-level 2" in toggled
        session.handle(":passes reset")
        assert session.opt_level is None
        assert session.pass_toggles == {}

    def test_cli_passes_rejects_unknown_pass(self):
        import io
        from repro.cli import Session
        out = io.StringIO()
        session = Session(out=out)
        session.handle(":passes on warp-speed")
        assert "unknown pass" in out.getvalue()

    def test_cli_opt_level_changes_evaluation_plan(self):
        import io
        from repro.cli import Session
        out = io.StringIO()
        session = Session(out=out, opt_level=0)
        session.handle("B = {{['a'], ['a'], ['b']}}")
        session.handle(":explain B (+) B")
        text = out.getvalue()
        assert "-- stages --" in text
        assert "opt-level 0" in text

    def test_every_rule_has_a_side_condition(self):
        for rule in ALL_RULES:
            assert rule.side_condition.strip(), rule.name
            assert rule.stage in ("normalize", "rewrite")

    def test_run_sql_accepts_opt_level(self):
        from repro.sql import Catalog, run_sql
        catalog = Catalog({"r": ("c1", "c2")})
        database = {"r": _R}
        rows_default = run_sql("SELECT * FROM r", catalog, database)
        for level in (0, 2):
            assert run_sql("SELECT * FROM r", catalog, database,
                           opt_level=level) == rows_default


# ----------------------------------------------------------------------
# Differential backends
# ----------------------------------------------------------------------

class TestOpt0Backend:
    def test_default_backends_include_engine_opt0(self):
        from repro.testkit.differential import DEFAULT_BACKENDS
        assert "engine-opt0" in DEFAULT_BACKENDS

    def test_opt_backends_agree_on_fuzz_cases(self):
        from repro.testkit.differential import Harness
        from repro.testkit.generate import generate_case
        harness = Harness(backends=("oracle", "engine-opt0",
                                    "engine-opt2"))
        for seed in range(25):
            report = harness.run_case(generate_case(seed))
            assert report.ok, report.mismatches
