"""Unit tests for the morsel-driven parallel executor.

Covers the three tentpole layers — hash partitioning + segment
compilation (``partition.py``), the exchange scheduler
(``exchange.py``), and cross-worker governance (``governor.py``) —
plus the satellite requirements: parallel counters in
``EngineStats``/:func:`explain_physical`, associative stats merge, and
engine=parallel dispatch through ``core.eval``/``run_sql``/the CLI.
"""

from __future__ import annotations

import io

import pytest

from repro.core.bag import Bag, Tup
from repro.core.errors import (
    BudgetExceeded, Cancelled, DeadlineExceeded, GovernedError,
)
from repro.core.eval import evaluate as core_evaluate
from repro.core.expr import (
    Attribute, Cartesian, Dedup, Lam, Map, Powerset, Select, Tupling,
    Var, var,
)
from repro.core.nest import Nest, Unnest
from repro.engine import EngineStats, PlanCache, evaluate, plan_for
from repro.engine import explain_physical
from repro.engine.parallel import (
    PARTITION_COMPAT, Exchange, Gather, ParallelConfig, ParallelPolicy,
    Partition, SharedBudget, WorkerGovernor, compile_parallel_segment,
    execute_program, merge_counts, split_counts,
)
from repro.guard import CancellationToken, Limits, ResourceGovernor

# ----------------------------------------------------------------------
# Fixtures: bags with duplicates, big enough to shard meaningfully
# ----------------------------------------------------------------------


def _bag_r() -> Bag:
    return Bag.from_counts(
        {Tup(i % 13, i % 7): (i % 3) + 1 for i in range(240)})


def _bag_s() -> Bag:
    return Bag.from_counts(
        {Tup(i % 7, i % 5): (i % 2) + 1 for i in range(150)})


def _arity_of_factory(arities):
    def arity_of(expr):
        if isinstance(expr, Var):
            return arities.get(expr.name)
        return None
    return arity_of


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------


class TestSplitMerge:
    def test_split_merge_roundtrip(self):
        counts = dict(_bag_r().items())
        shards = split_counts(counts, 8)
        assert sum(len(s) for s in shards) == len(counts)
        assert merge_counts(shards) == counts

    def test_split_is_disjoint_and_deterministic(self):
        counts = dict(_bag_r().items())
        first = split_counts(counts, 5)
        second = split_counts(counts, 5)
        assert first == second
        seen = set()
        for shard in first:
            assert not (seen & set(shard))
            seen |= set(shard)

    def test_copartitioning_across_operands(self):
        """Every copy of a value lands in the same shard on both
        operands — the property that makes monus/intersect/dedup
        shard-local."""
        left = dict(_bag_r().items())
        right = {value: 7 for value in list(left)[::2]}
        left_shards = split_counts(left, 4)
        right_shards = split_counts(right, 4)
        for value in right:
            home = [i for i, s in enumerate(left_shards) if value in s]
            also = [i for i, s in enumerate(right_shards) if value in s]
            assert home == also

    def test_key_partitioning_groups_by_key(self):
        counts = dict(_bag_r().items())
        shards = split_counts(counts, 4, key=(1,))
        homes = {}
        for index, shard in enumerate(shards):
            for value in shard:
                key = value.attribute(1)
                assert homes.setdefault(key, index) == index

    def test_compat_table_covers_every_kernel_class(self):
        assert PARTITION_COMPAT["additive-union"] == "local"
        assert PARTITION_COMPAT["dedup"] == "local"
        assert PARTITION_COMPAT["hash-join"] == "key-local"
        assert PARTITION_COMPAT["nest-build"] == "key-local"
        assert PARTITION_COMPAT["map"] == "root-local"
        assert PARTITION_COMPAT["powerset"] == "barrier"
        assert PARTITION_COMPAT["flatten"] == "barrier"


class TestSegmentCompiler:
    def test_union_chain_compiles_with_value_leaves(self):
        expr = Dedup((var("A") + var("B")) - var("C"))
        segment = compile_parallel_segment(expr, lambda e: None)
        assert segment is not None
        assert [leaf.key for leaf in segment.leaves] == [None] * 3
        ops = [step[0] for step in segment.program]
        assert ops == ["union", "monus", "dedup"]

    def test_join_compiles_with_key_leaves(self):
        join = Select(Lam("t", Attribute(Var("t"), 2)),
                      Lam("t", Attribute(Var("t"), 3)),
                      Cartesian(var("R"), var("S")), "eq")
        segment = compile_parallel_segment(
            join, _arity_of_factory({"R": 2, "S": 2}))
        assert segment is not None
        assert [leaf.key for leaf in segment.leaves] == [(2,), (1,)]
        assert segment.program[-1][0] == "join"

    def test_join_without_arity_falls_back_to_select_over_product(self):
        """With no arity information the compiler cannot split the
        Cartesian sides by join key, so it degrades to a shard-local
        select over the whole product as one opaque leaf."""
        join = Select(Lam("t", Attribute(Var("t"), 2)),
                      Lam("t", Attribute(Var("t"), 3)),
                      Cartesian(var("R"), var("S")), "eq")
        segment = compile_parallel_segment(join, lambda e: None)
        assert segment is not None
        assert len(segment.leaves) == 1
        assert segment.leaves[0].key is None
        assert segment.program[-1][0] == "select"

    def test_nest_partitions_on_group_key(self):
        segment = compile_parallel_segment(
            Nest(var("R"), 2), _arity_of_factory({"R": 2}))
        assert segment is not None
        # rest of {2} in arity 2 is (1,): the group key
        assert segment.leaves[0].key == (1,)

    def test_map_only_at_root(self):
        proj = Lam("t", Tupling(Attribute(Var("t"), 2),
                                Attribute(Var("t"), 1)))
        at_root = compile_parallel_segment(
            Map(proj, Dedup(var("R") + var("R"))), lambda e: None)
        assert at_root is not None
        assert at_root.program[-1][0] == "map"
        # map *below* a dedup would break value-disjointness: the map
        # subtree must become an opaque leaf instead of a program step
        below = compile_parallel_segment(
            Dedup(Map(proj, var("R")) + var("S")), lambda e: None)
        assert below is not None
        assert all(step[0] != "map" for step in below.program)

    def test_barrier_roots_refuse(self):
        assert compile_parallel_segment(Powerset(var("R")),
                                        lambda e: None) is None
        assert compile_parallel_segment(Unnest(var("R"), 1),
                                        lambda e: None) is None
        assert compile_parallel_segment(var("R"), lambda e: None) is None

    def test_program_executes_like_the_oracle(self):
        expr = Dedup((var("A") + var("B")) - var("C"))
        segment = compile_parallel_segment(expr, lambda e: None)
        a, b = _bag_r(), _bag_s()
        c = Bag.from_counts({Tup(i % 13, i % 7): 1 for i in range(60)})
        expected = core_evaluate(expr, {"A": a, "B": b, "C": c})
        inputs = [dict(bag.items()) for bag in (a, b, c)]
        got = execute_program(segment.program, inputs)
        assert Bag.from_counts(got) == expected


# ----------------------------------------------------------------------
# Parallel-vs-serial equality (the differential heart)
# ----------------------------------------------------------------------

_R, _S = _bag_r(), _bag_s()

_JOIN = Select(Lam("t", Attribute(Var("t"), 2)),
               Lam("t", Attribute(Var("t"), 3)),
               Cartesian(var("R"), var("S")), "eq")

_BATTERY = [
    ("union-chain", Dedup((var("R") + var("R")) - var("S"))),
    ("monus-self", var("R") - var("R")),
    ("join", _JOIN),
    ("dedup-join", Dedup(_JOIN)),
    ("nest", Nest(var("R"), 2)),
    ("map-root", Map(Lam("t", Tupling(Attribute(Var("t"), 2),
                                      Attribute(Var("t"), 1))),
                     Dedup(var("R") - var("S")))),
    ("self-join", Select(Lam("t", Attribute(Var("t"), 1)),
                         Lam("t", Attribute(Var("t"), 3)),
                         Cartesian(var("R"), var("R")), "eq")),
]


class TestParallelEquality:
    @pytest.mark.parametrize("label,expr",
                             _BATTERY, ids=[l for l, _ in _BATTERY])
    def test_thread_backend_matches_serial(self, label, expr):
        db = {"R": _R, "S": _S}
        serial = evaluate(expr, db, cache=None)
        for workers in (1, 2, 4):
            parallel = evaluate(expr, db, engine="parallel",
                                workers=workers, parallel_threshold=0.0,
                                cache=None)
            assert parallel == serial, f"{label} @ {workers} workers"

    def test_process_backend_matches_serial(self):
        db = {"R": _R, "S": _S}
        serial = evaluate(_JOIN, db, cache=None)
        parallel = evaluate(_JOIN, db, engine="parallel", workers=2,
                            parallel_backend="process",
                            parallel_threshold=0.0, cache=None)
        assert parallel == serial

    def test_threshold_refuses_small_inputs(self):
        stats = EngineStats()
        small = {"R": Bag.from_counts({Tup(1, 2): 1})}
        expr = Dedup(var("R") + var("R"))
        result = evaluate(expr, small, engine="parallel", workers=2,
                          cache=None, stats=stats)  # default threshold
        assert result == evaluate(expr, small, cache=None)
        assert stats.partitions_created == 0  # exchange refused

    def test_exchange_counters_populate(self):
        stats = EngineStats()
        evaluate(_JOIN, {"R": _R, "S": _S}, engine="parallel",
                 workers=2, parallel_threshold=0.0, cache=None,
                 stats=stats)
        assert stats.partitions_created == 2
        assert stats.morsels_executed >= 1
        assert stats.gather_barriers == 1
        assert len(stats.worker_steps) == stats.morsels_executed

    def test_parallel_and_serial_plans_use_distinct_cache_keys(self):
        cache = PlanCache(capacity=16)
        db = {"R": _R, "S": _S}
        serial_plan = plan_for(_JOIN, db, cache=cache)
        parallel_plan = plan_for(_JOIN, db, cache=cache,
                                 policy=ParallelPolicy(threshold=0.0))
        assert serial_plan is not parallel_plan
        assert isinstance(parallel_plan.root, Gather)
        assert not isinstance(serial_plan.root, Gather)
        # both keys hit on a second fetch
        assert plan_for(_JOIN, db, cache=cache) is serial_plan
        assert plan_for(_JOIN, db, cache=cache,
                        policy=ParallelPolicy(threshold=0.0)
                        ) is parallel_plan

    def test_cached_parallel_plan_runs_inline_without_config(self):
        """A parallel plan executed without a ParallelConfig (Exchange
        sees ctx.parallel None) must still produce the right bag."""
        db = {"R": _R, "S": _S}
        plan = plan_for(_JOIN, db, policy=ParallelPolicy(threshold=0.0))
        from repro.core.eval import Evaluator
        from repro.engine.physical import ExecContext
        result = plan.execute(ExecContext(db, Evaluator(track_stats=False)))
        assert result == evaluate(_JOIN, db, cache=None)


# ----------------------------------------------------------------------
# Governance
# ----------------------------------------------------------------------

_BIG = Bag.from_counts(
    {Tup(i % 97, i % 31): (i % 3) + 1 for i in range(3000)})
_GOVERNED_EXPR = Dedup(var("R") + (var("R") - var("R")))


class TestParallelGovernance:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_step_budget_fires(self, backend):
        with pytest.raises(BudgetExceeded):
            evaluate(_GOVERNED_EXPR, {"R": _BIG}, engine="parallel",
                     workers=2, parallel_backend=backend,
                     parallel_threshold=0.0, cache=None,
                     limits=Limits(max_steps=5))

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_deadline_fires(self, backend):
        with pytest.raises(DeadlineExceeded):
            evaluate(_GOVERNED_EXPR, {"R": _BIG}, engine="parallel",
                     workers=2, parallel_backend=backend,
                     parallel_threshold=0.0, cache=None,
                     limits=Limits(timeout=1e-9))

    def test_cancellation_reaches_workers(self):
        token = CancellationToken()
        token.cancel("user abort")
        governor = ResourceGovernor(Limits(max_steps=10**6), token=token)
        with pytest.raises(Cancelled):
            evaluate(_GOVERNED_EXPR, {"R": _BIG}, engine="parallel",
                     workers=2, parallel_threshold=0.0, cache=None,
                     governor=governor)

    def test_size_budget_fires_in_workers(self):
        with pytest.raises(BudgetExceeded) as info:
            evaluate(_GOVERNED_EXPR, {"R": _BIG}, engine="parallel",
                     workers=2, parallel_threshold=0.0, cache=None,
                     limits=Limits(max_size=50))
        assert info.value.details.get("budget") == "size"

    def test_governed_powerset_leaf(self):
        """Powerset is a barrier: it runs serially inside the leaf, and
        its budget raises the same error family either way."""
        bag = Bag.from_counts({Tup(i): 1 for i in range(30)})
        expr = Dedup(Powerset(var("T")) + Powerset(var("T")))
        with pytest.raises(BudgetExceeded) as serial_info:
            evaluate(expr, {"T": bag}, cache=None, powerset_budget=64)
        with pytest.raises(BudgetExceeded) as parallel_info:
            evaluate(expr, {"T": bag}, engine="parallel", workers=2,
                     parallel_threshold=0.0, cache=None,
                     powerset_budget=64)
        assert (serial_info.value.details.get("budget")
                == parallel_info.value.details.get("budget")
                == "powerset")

    def test_same_error_family_as_serial(self):
        for limits in (Limits(max_steps=5), Limits(timeout=1e-9),
                       Limits(max_size=50)):
            serial_error = parallel_error = None
            try:
                evaluate(_GOVERNED_EXPR, {"R": _BIG}, cache=None,
                         limits=limits)
            except GovernedError as err:
                serial_error = type(err)
            try:
                evaluate(_GOVERNED_EXPR, {"R": _BIG}, engine="parallel",
                         workers=2, parallel_threshold=0.0, cache=None,
                         limits=limits)
            except GovernedError as err:
                parallel_error = type(err)
            assert serial_error is not None
            assert parallel_error is serial_error

    def test_parent_steps_absorb_worker_work(self):
        governor = ResourceGovernor(Limits(max_steps=10**6))
        evaluate(_GOVERNED_EXPR, {"R": _BIG}, engine="parallel",
                 workers=2, parallel_threshold=0.0, cache=None,
                 governor=governor)
        serial_governor = ResourceGovernor(Limits(max_steps=10**6))
        evaluate(_GOVERNED_EXPR, {"R": _BIG}, cache=None,
                 governor=serial_governor)
        # parallel accounting lands in the same order of magnitude as
        # serial (exact equality is not required: tick placement
        # differs across the exchange boundary)
        assert governor.steps > 0
        assert governor.steps >= serial_governor.steps // 4


class TestSharedBudget:
    def test_acquire_drains_and_refunds(self):
        budget = SharedBudget(100)
        assert budget.acquire(64) == 64
        assert budget.acquire(64) == 36
        assert budget.acquire(64) == 0
        budget.refund(10)
        assert budget.acquire(64) == 10
        assert budget.spilled() == 100

    def test_unlimited_budget(self):
        budget = SharedBudget(None)
        assert budget.acquire(64) == 64
        assert budget.spilled() == 64

    def test_worker_governor_draws_slices(self):
        parent = ResourceGovernor(Limits(max_steps=1000))
        parent.start()
        shared = SharedBudget(100)
        worker = WorkerGovernor(parent, shared)
        for _ in range(100):
            worker.tick()
        with pytest.raises(BudgetExceeded):
            worker.tick()
        assert worker.steps == 100

    def test_worker_governor_sees_parent_cancellation(self):
        parent = ResourceGovernor(Limits(max_steps=1000))
        parent.start()
        worker = WorkerGovernor(parent, SharedBudget(None))
        worker.tick()
        parent.token.cancel("stop")
        with pytest.raises(Cancelled):
            worker.tick()


# ----------------------------------------------------------------------
# Stats merge (satellite: associativity)
# ----------------------------------------------------------------------


def _stats(seed: int) -> EngineStats:
    stats = EngineStats()
    stats.record_kernel(f"k{seed % 3}")
    stats.record_kernel("scan")
    stats.rows_emitted = seed * 11
    stats.lowerings = seed % 2
    stats.cache_hits = seed
    stats.cache_misses = 3 - (seed % 3)
    stats.shared_materialized = seed % 4
    stats.oracle_fallbacks = seed % 5
    stats.partitions_created = seed % 3
    stats.morsels_executed = seed
    stats.gather_barriers = seed % 2
    stats.worker_steps = [seed, seed + 1]
    stats.morsel_retries = seed % 3
    stats.pool_respawns = seed % 2
    stats.demotions = [f"process->thread: seed {seed}"]
    return stats


class TestStatsMerge:
    def test_merge_is_associative(self):
        a, b, c = _stats(1), _stats(2), _stats(3)
        left = a.merged_with(b).merged_with(c)
        right = a.merged_with(b.merged_with(c))
        assert left == right

    def test_merge_does_not_mutate_operands(self):
        a, b = _stats(4), _stats(5)
        a_copy, b_copy = _stats(4), _stats(5)
        a.merged_with(b)
        assert a == a_copy and b == b_copy

    def test_merge_from_accumulates(self):
        a, b = _stats(1), _stats(2)
        expected = a.merged_with(b)
        a.merge_from(b)
        assert a == expected


# ----------------------------------------------------------------------
# Dispatch surfaces
# ----------------------------------------------------------------------


class TestDispatch:
    def test_core_eval_parallel_engine(self):
        expr = Dedup(var("R") + var("R"))
        assert core_evaluate(expr, {"R": _R}, engine="parallel",
                             workers=2) == core_evaluate(
            expr, {"R": _R})

    def test_run_sql_parallel_engine(self):
        from repro.sql import Catalog, run_sql
        catalog = Catalog({"R": ("c1", "c2"), "S": ("c1", "c2")})
        db = {"R": _R, "S": _S}
        sql = "SELECT * FROM R t1, S t2 WHERE t1.c2 = t2.c1"
        assert run_sql(sql, catalog, db, engine="parallel",
                       workers=2) == run_sql(sql, catalog, db)

    def test_cli_session_parallel(self):
        from repro.cli import Session
        out = io.StringIO()
        session = Session(out=out, engine="parallel", workers=2)
        session.handle("B = {{['a','b'], ['a','b'], ['b','a']}}")
        session.handle("eps(B (+) B)")
        assert "{{['a', 'b'], ['b', 'a']}}" in out.getvalue()

    def test_cli_explain_shows_parallel_section(self):
        from repro.cli import Session
        out = io.StringIO()
        session = Session(out=out, engine="parallel", workers=2)
        session.handle("B = {{['a','b'], ['a','b'], ['b','a']}}")
        session.handle(":explain eps(B (+) B)")
        text = out.getvalue()
        assert "-- physical --" in text
        assert "-- parallel --" in text
        assert "-- exchange --" in text
        assert "morsels executed" in text

    def test_explain_physical_parallel_footer(self):
        text = explain_physical(_JOIN, {"R": _R, "S": _S},
                                engine="parallel", workers=2,
                                parallel_threshold=0.0)
        assert "Gather" in text
        assert "Exchange" in text
        assert "Partition" in text
        assert "key=[2]" in text and "key=[1]" in text
        assert "partitions created   2" in text

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            evaluate(var("R"), {"R": _R}, engine="quantum")

    def test_bad_parallel_config_rejected(self):
        with pytest.raises(ValueError):
            ParallelConfig(workers=0)
        with pytest.raises(ValueError):
            ParallelConfig(backend="fiber")


# ----------------------------------------------------------------------
# Fail-fast error propagation
# ----------------------------------------------------------------------


class TestFailFast:
    def test_worker_error_propagates_and_token_resets(self):
        governor = ResourceGovernor(Limits(max_steps=30))
        with pytest.raises(BudgetExceeded):
            evaluate(_GOVERNED_EXPR, {"R": _BIG}, engine="parallel",
                     workers=4, parallel_threshold=0.0, cache=None,
                     governor=governor)
        # the fail-fast cancellation must not stick to the governor's
        # token after the error surfaced (a sticky token would poison
        # subsequent evaluations that reuse the same token)
        assert not governor.token.cancelled

    def test_exchange_with_no_rows(self):
        empty = Bag.from_counts({})
        expr = Dedup(var("R") + var("R"))
        result = evaluate(expr, {"R": empty}, engine="parallel",
                          workers=2, parallel_threshold=0.0, cache=None)
        assert result == Bag.from_counts({})


class TestFailFastEdges:
    """The token-reset / secondary-cancellation edges of the fail-fast
    scheduler: the *primary* failure (a worker's own governed verdict)
    must win over the secondary ``Cancelled`` errors and cancelled
    queued futures it provokes, and the sticky token must be reset."""

    def test_prefer_keeps_primary_over_secondary(self):
        from repro.engine.parallel.exchange import _prefer
        primary = BudgetExceeded("steps", budget="steps")
        secondary = Cancelled("parallel worker failed: BudgetExceeded")
        assert _prefer(None, secondary) is secondary
        assert _prefer(secondary, primary) is primary
        assert _prefer(primary, secondary) is primary
        # two non-Cancelled errors: first one wins
        other = BudgetExceeded("size", budget="size")
        assert _prefer(primary, other) is primary

    def test_uncancel_resets_only_fail_fast_tokens(self):
        from types import SimpleNamespace

        from repro.engine.parallel.exchange import _uncancel
        governor = ResourceGovernor(Limits(max_steps=10))
        governor.token.cancel("parallel worker failed: BudgetExceeded")
        _uncancel(SimpleNamespace(governor=governor),
                  BudgetExceeded("steps"))
        assert not governor.token.cancelled
        # a user-initiated cancellation is NOT reset
        governor = ResourceGovernor(Limits(max_steps=10))
        governor.token.cancel("user abort")
        _uncancel(SimpleNamespace(governor=governor),
                  BudgetExceeded("steps"))
        assert governor.token.cancelled
        # neither is a fail-fast token when the surfacing error IS the
        # cancellation (nothing more primary ever arrived)
        governor = ResourceGovernor(Limits(max_steps=10))
        governor.token.cancel("parallel worker failed: Cancelled")
        _uncancel(SimpleNamespace(governor=governor),
                  Cancelled("secondary"))
        assert governor.token.cancelled

    def test_primary_beats_first_completed_secondary_cancellation(
            self, monkeypatch):
        """The first *completed* future carries a secondary
        ``Cancelled``; the real (governed) verdict finishes later and
        must still be the error that surfaces, with the token reset."""
        import threading
        import time as time_mod

        from repro.engine.parallel import exchange as exchange_mod

        lock = threading.Lock()
        primary_running = threading.Event()
        calls = iter(range(100))

        def fake_execute(program, inputs, **kwargs):
            with lock:
                n = next(calls)
            if n == 0:
                # wait until the primary-failure morsel is running so
                # it cannot be cancelled, then fail "secondarily"
                primary_running.wait(5)
                raise Cancelled("parallel worker failed: simulated")
            if n == 1:
                primary_running.set()
                time_mod.sleep(0.1)
                raise BudgetExceeded("the real verdict", budget="steps")
            raise Cancelled("tertiary")  # queued morsels, if any run

        monkeypatch.setattr(exchange_mod, "execute_program",
                            fake_execute)
        governor = ResourceGovernor(Limits(max_steps=10**6))
        with pytest.raises(BudgetExceeded) as info:
            evaluate(_GOVERNED_EXPR, {"R": _BIG}, engine="parallel",
                     workers=2, parallel_threshold=0.0, cache=None,
                     governor=governor)
        assert info.value.details.get("budget") == "steps"
        assert not governor.token.cancelled

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_cancelled_queued_morsels_are_skipped(self, monkeypatch,
                                                  backend):
        """workers=1 queues every morsel after the first; the first
        failure cancels them, and the scheduler must *skip* those
        futures (``.exception()`` on a successfully-cancelled future
        raises ``CancelledError``, which would escape as a crash)."""
        import multiprocessing

        if (backend == "process" and "fork"
                not in multiprocessing.get_all_start_methods()):
            pytest.skip("needs fork so workers see the patched module")

        from repro.engine.parallel import exchange as exchange_mod

        def fake_execute(program, inputs, **kwargs):
            raise BudgetExceeded("worker verdict", budget="steps")

        monkeypatch.setattr(exchange_mod, "execute_program",
                            fake_execute)
        with pytest.raises(BudgetExceeded):
            evaluate(_GOVERNED_EXPR, {"R": _BIG}, engine="parallel",
                     workers=1, parallel_backend=backend,
                     parallel_threshold=0.0, cache=None,
                     limits=Limits(max_steps=10**6))
