"""Tests for the conformance testkit itself: the typed generator, the
structural shrinker, the corpus (de)serialization, the differential
harness, the SQL recognizer, the metamorphic catalogue, and the fuzz
CLI.

The mutation checks at the bottom are the teeth: each reintroduces a
historical kernel-bug shape (monus keeping zero-count rows, nest
collapsing group multiplicities, unnest dropping the multiplicity
product) and asserts the ``oracle`` vs ``engine`` differential catches
it within a small bounded number of generated cases.  The detection
bounds are documented in ``docs/testkit.md``.
"""

from __future__ import annotations

import random

import pytest

import repro.engine.kernels as kernels
from repro.core.bag import Bag, Tup
from repro.core.expr import (
    AdditiveUnion, Attribute, Cartesian, Const, Dedup, Lam, Map,
    Powerset, Select, Subtraction, Tupling, Var,
)
from repro.core.fragments import max_bag_nesting
from repro.core.typecheck import TypeChecker, infer_type
from repro.core.types import BagType, TupleType, U
from repro.guard import FaultPlan, FaultSequence, Limits, is_injected
from repro.sql import run_sql
from repro.testkit import (
    Case, CaseGenerator, Harness, LAWS, balg1_expr, case_from_json,
    case_to_json, check_laws, flat_input_bag, generate_case,
    load_corpus, save_case, shrink_case,
)
from repro.testkit.differential import DEFAULT_BACKENDS, sql_view
from repro.testkit.generate import (
    FRAGMENT_NESTING, _node_count, subterms_with_rebuild,
)
from repro.testkit.corpus import value_from_json, value_to_json


def _simple_case(expr, schema, database, fragment="balg2"):
    return Case(schema=schema, database=database, expr=expr,
                fragment=fragment)


def _contains(expr, cls) -> bool:
    if isinstance(expr, cls):
        return True
    return any(_contains(child, cls)
               for child, _ in subterms_with_rebuild(expr))


FLAT = BagType(TupleType((U, U)))


class TestGenerator:
    def test_deterministic_replay(self):
        for index in (0, 3, 17):
            first = generate_case(42, index)
            second = generate_case(42, index)
            assert first.expr == second.expr
            assert first.schema == second.schema
            assert first.database == second.database

    def test_indices_give_distinct_streams(self):
        exprs = {generate_case(7, index).expr for index in range(12)}
        assert len(exprs) > 6

    def test_cases_are_well_typed(self):
        for index in range(40):
            case = generate_case(11, index, fragment="mixed")
            typ = TypeChecker().check(case.expr, case.schema)
            assert isinstance(typ, BagType)

    def test_fragment_nesting_bound_respected(self):
        for fragment, cap in FRAGMENT_NESTING.items():
            for index in range(25):
                case = generate_case(3, index, fragment=fragment)
                assert case.fragment == fragment
                assert max_bag_nesting(case.expr, case.schema) <= cap

    def test_database_matches_schema(self):
        for index in range(15):
            case = generate_case(23, index)
            assert set(case.database) == set(case.schema)
            for name, bag in case.database.items():
                assert isinstance(bag, Bag)

    def test_balg1_port_is_well_typed(self):
        schema = {"B": FLAT}
        for seed in range(30):
            rng = random.Random(seed)
            expr = balg1_expr(rng)
            typ = TypeChecker().check(expr, schema)
            assert typ == FLAT
            assert max_bag_nesting(expr, schema) <= 1

    def test_flat_input_bag_shape(self):
        rng = random.Random(5)
        bag = flat_input_bag(rng, arity=3, max_size=4)
        assert isinstance(bag, Bag)
        for element in bag.distinct():
            assert isinstance(element, Tup) and element.arity == 3

    def test_generator_object_respects_size(self):
        generator = CaseGenerator(random.Random(1), fragment="balg2",
                                  size=6)
        case = generator.case()
        assert _node_count(case.expr) <= 3 * 6  # loose structural cap


class TestShrinker:
    def test_subterms_cover_lambda_bodies(self):
        expr = Map(Lam("t", Tupling(Attribute(Var("t"), 1))),
                   Var("R"))
        children = [child for child, _ in subterms_with_rebuild(expr)]
        assert Var("R") in children
        assert Tupling(Attribute(Var("t"), 1)) in children

    def test_rebuild_round_trips(self):
        expr = AdditiveUnion(Dedup(Var("R")), Var("S"))
        for child, rebuild in subterms_with_rebuild(expr):
            assert rebuild(child) == expr

    def test_shrink_preserves_predicate_and_shrinks(self):
        # predicate: the expression still mentions a Dedup node
        big = AdditiveUnion(
            Cartesian(Dedup(Var("R")), Var("R")),
            AdditiveUnion(Var("R"), Var("R")))
        case = _simple_case(
            big, {"R": FLAT},
            {"R": Bag.of(Tup("a", "b"), Tup("a", "b"), Tup("c", "d"))})

        def still_fails(candidate):
            return _contains(candidate.expr, Dedup)

        small = shrink_case(case, still_fails)
        assert still_fails(small)
        assert _node_count(small.expr) < _node_count(case.expr)
        # the minimal Dedup-containing well-typed expression here is
        # Dedup(R) itself (promotion all the way up)
        assert small.expr == Dedup(Var("R"))

    def test_shrink_drops_unused_relations(self):
        case = _simple_case(
            Dedup(Var("R")),
            {"R": FLAT, "S": FLAT},
            {"R": Bag.of(Tup("a", "b")), "S": Bag.of(Tup("c", "d"))})
        small = shrink_case(case,
                            lambda c: _contains(c.expr, Dedup))
        assert set(small.schema) == {"R"}
        assert set(small.database) == {"R"}

    def test_shrink_shrinks_constants(self):
        case = _simple_case(
            Const(Bag.of("a", "a", "b", "c")), {}, {})
        small = shrink_case(
            case,
            lambda c: isinstance(c.expr, Const)
            and not c.expr.value.is_empty())
        assert isinstance(small.expr, Const)
        assert small.expr.value.cardinality == 1

    def test_shrunk_case_stays_well_typed(self):
        case = generate_case(2, 4)
        small = shrink_case(case, lambda c: True)
        TypeChecker().check(small.expr, small.schema)


class TestCorpus:
    def test_value_json_round_trip(self):
        nested = Bag.of(
            Tup("a", Bag.of(Tup(1), Tup(1), Tup(2))),
            Tup("b", Bag()))
        assert value_from_json(value_to_json(nested)) == nested

    def test_value_json_is_deterministic(self):
        one = Bag.of("b", "a", "a")
        two = Bag.of("a", "a", "b")
        assert value_to_json(one) == value_to_json(two)

    def test_case_json_round_trip(self):
        for index in range(10):
            case = generate_case(9, index, fragment="mixed")
            back = case_from_json(case_to_json(case))
            assert back.schema == case.schema
            assert back.database == case.database
            # surface text round trip is semantic (pi-sugar), so
            # compare by evaluation through the harness oracle
            harness = Harness(backends=("oracle",), metamorphic=False)
            original = harness.run_case(case).outcomes["oracle"]
            replayed = harness.run_case(back).outcomes["oracle"]
            assert original.status == replayed.status
            if original.status == "ok":
                assert original.value == replayed.value

    def test_save_and_load(self, tmp_path):
        case = generate_case(13, 2)
        path = save_case(case, str(tmp_path), meta={"kind": "value"})
        assert path.endswith(".json")
        loaded = load_corpus(str(tmp_path))
        assert len(loaded) == 1
        saved_path, saved_case, meta = loaded[0]
        assert saved_path == path
        assert meta["kind"] == "value"
        assert saved_case.schema == case.schema

    def test_malformed_value_rejected(self):
        from repro.core.errors import ReproError
        with pytest.raises(ReproError):
            value_from_json(["nope", 1])
        with pytest.raises(ReproError):
            value_to_json(object())


class TestHarness:
    def test_clean_case_reports_ok(self):
        harness = Harness()
        report = harness.run_case(generate_case(0, 0))
        assert report.ok
        assert set(report.outcomes) == set(DEFAULT_BACKENDS)
        assert report.outcomes["oracle"].status == "ok"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Harness(backends=("oracle", "quantum"))

    def test_powerset_blowup_is_governed_not_mismatch(self):
        rows = Bag.of(*(Tup(i, i) for i in range(12)))
        case = _simple_case(Powerset(Var("R")), {"R": FLAT},
                            {"R": rows}, fragment="balg2")
        harness = Harness(backends=("oracle", "engine"),
                          limits=Limits(max_steps=100_000,
                                        max_size=10_000,
                                        powerset_budget=64,
                                        max_depth=300),
                          metamorphic=False)
        report = harness.run_case(case)
        assert report.ok
        assert report.outcomes["oracle"].status == "governed"

    def test_engine_warm_hits_plan_cache(self):
        harness = Harness(backends=("oracle", "engine-warm"),
                          metamorphic=False)
        case = generate_case(4, 1)
        report = harness.run_case(case)
        assert report.ok
        assert harness.cache.stats.hits >= 1

    def test_injected_fault_degrades_to_governed(self):
        harness = Harness(
            backends=("oracle", "engine"), metamorphic=False,
            faults=FaultSequence([FaultPlan(at_step=1, kind="budget")]))
        report = harness.run_case(generate_case(0, 2))
        assert report.ok
        for outcome in report.outcomes.values():
            assert outcome.status == "governed"
            assert is_injected(outcome.error)

    def test_value_disagreement_is_reported(self):
        # a fake backend disagreement via a broken kernel, one case
        original = kernels.k_monus

        def broken(left, right, sr=None):
            for value, count in original(left, right, sr):
                yield value, count + 1

        # Subtraction drives monus; the mutant inflates every count
        case = _simple_case(
            Subtraction(AdditiveUnion(Var("R"), Var("R")), Var("R")),
            {"R": FLAT}, {"R": Bag.of(Tup("a", "b"))})
        kernels.k_monus = broken
        try:
            harness = Harness(backends=("oracle", "engine"),
                              metamorphic=False)
            report = harness.run_case(case)
        finally:
            kernels.k_monus = original
        assert not report.ok
        assert report.mismatches[0].kind == "value"
        assert report.mismatches[0].backend == "engine"


class TestSqlView:
    SCHEMA = {"R": FLAT, "S": FLAT}

    def _check(self, expr, database):
        view = sql_view(expr, self.SCHEMA)
        assert view is not None
        text, catalog = view
        rows = run_sql(text, catalog, database)
        from repro.core.eval import evaluate
        expected = evaluate(expr, **database)
        decoded = sorted((tuple(element.items())
                          for element in expected.elements()),
                         key=repr)
        assert rows == decoded
        return text

    def test_select_project_dedup(self):
        database = {"R": Bag.of(Tup("a", "b"), Tup("a", "b"),
                                Tup("b", "b")),
                    "S": Bag.of(Tup("c", "d"))}
        expr = Dedup(Map(
            Lam("t", Tupling(Attribute(Var("t"), 2))),
            Select(Lam("t", Attribute(Var("t"), 1)),
                   Lam("t", Attribute(Var("t"), 2)),
                   Var("R"), op="eq")))
        text = self._check(expr, database)
        assert text.startswith("SELECT DISTINCT")
        assert "WHERE t1.c1 = t1.c2" in text

    def test_join_and_setop(self):
        database = {"R": Bag.of(Tup("a", "b"), Tup("c", "d")),
                    "S": Bag.of(Tup("a", "b"))}
        expr = AdditiveUnion(Cartesian(Var("R"), Var("S")),
                             Cartesian(Var("R"), Var("S")))
        text = self._check(expr, database)
        assert "UNION ALL" in text
        assert "FROM R t1, S t2" in text

    def test_constant_comparison(self):
        database = {"R": Bag.of(Tup("a", "b"), Tup("x", "y")),
                    "S": Bag.of(Tup("c", "d"))}
        expr = Select(Lam("t", Attribute(Var("t"), 1)),
                      Lam("t", Const("a")), Var("R"), op="eq")
        text = self._check(expr, database)
        assert "t1.c1 = 'a'" in text

    def test_unsupported_shapes_return_none(self):
        assert sql_view(Powerset(Var("R")), self.SCHEMA) is None
        assert sql_view(Dedup(Powerset(Var("R"))), self.SCHEMA) is None
        quoted = Select(Lam("t", Attribute(Var("t"), 1)),
                        Lam("t", Const("a'b")), Var("R"), op="eq")
        assert sql_view(quoted, self.SCHEMA) is None


class TestMetamorphic:
    def _run(self, expr, schema, database, value=None):
        case = _simple_case(expr, schema, database)
        typ = infer_type(expr, schema)
        from repro.core.eval import Evaluator
        evaluate = lambda e: Evaluator().run(e, database)  # noqa: E731
        if value is None:
            value = evaluate(expr)
        return check_laws(case, typ, value, evaluate)

    def test_clean_case_passes_all_applicable_laws(self):
        results = self._run(
            Dedup(Var("R")), {"R": FLAT},
            {"R": Bag.of(Tup("a", "b"), Tup("a", "b"))})
        assert results
        assert not [law for law in results if law.status == "failed"]
        assert {law.name for law in results} == {name
                                                for name, _, _ in LAWS}

    def test_wrong_value_fails_a_law(self):
        results = self._run(
            Dedup(Var("R")), {"R": FLAT},
            {"R": Bag.of(Tup("a", "b"))},
            value=Bag.of(Tup("z", "z"), Tup("z", "z")))
        assert [law for law in results if law.status == "failed"]

    def test_laws_carry_paper_refs(self):
        refs = {ref for _, ref, _ in LAWS}
        assert "Proposition 3.1" in refs
        assert "Section 3" in refs


class TestFuzzCli:
    def test_small_clean_run_exits_zero(self, tmp_path, capsys):
        from repro.testkit.cli import main
        status = main(["--cases", "6", "--seed", "3",
                       "--corpus", str(tmp_path), "--quiet"])
        out = capsys.readouterr().out
        assert status == 0
        assert "fuzz: OK" in out
        assert not list(tmp_path.iterdir())

    def test_dispatch_through_repro_cli(self, tmp_path, capsys):
        from repro.cli import main
        status = main(["fuzz", "--cases", "2", "--seed", "1",
                       "--corpus", str(tmp_path), "--quiet",
                       "--backends", "oracle,engine"])
        assert status == 0

    def test_bad_seed_is_usage_error(self, capsys):
        from repro.testkit.cli import main
        assert main(["--seed", "banana", "--cases", "1"]) == 2

    def test_bad_backend_is_usage_error(self, capsys):
        from repro.testkit.cli import main
        assert main(["--backends", "oracle,quantum",
                     "--cases", "1"]) == 2

    def test_failure_persists_minimized_corpus_case(self, tmp_path,
                                                    capsys):
        from repro.testkit.cli import main
        original = kernels.k_monus

        def broken(left, right, sr=None):
            get = right.get
            for value, count in left.items():
                remaining = count - get(value, 0)
                if remaining >= 0:
                    yield value, max(1, remaining)

        kernels.k_monus = broken
        try:
            status = main(["--cases", "40", "--seed", "0",
                           "--corpus", str(tmp_path), "--quiet",
                           "--backends", "oracle,engine",
                           "--no-metamorphic"])
        finally:
            kernels.k_monus = original
        out = capsys.readouterr().out
        assert status == 1
        assert "MISMATCH" in out
        saved = load_corpus(str(tmp_path))
        assert saved
        _, case, meta = saved[0]
        assert meta["kind"] == "value"
        # the persisted repro must still fail under the mutant...
        kernels.k_monus = broken
        try:
            harness = Harness(backends=("oracle", "engine"),
                              metamorphic=False)
            assert not harness.run_case(case).ok
        finally:
            kernels.k_monus = original
        # ... and replay green on the fixed kernels
        assert harness.run_case(case).ok


# ----------------------------------------------------------------------
# Mutation checks: reintroduced kernel bugs must be caught quickly
# ----------------------------------------------------------------------

def _detect(mutant_name, patch, cases=60):
    """Run oracle-vs-engine over a fixed stream with one kernel
    mutated; return the 1-based index of the first mismatch."""
    original = getattr(kernels, mutant_name)
    setattr(kernels, mutant_name, patch(original))
    try:
        harness = Harness(backends=("oracle", "engine"),
                          metamorphic=False)
        for index in range(cases):
            report = harness.run_case(
                generate_case(0, index, fragment="mixed"))
            if report.mismatches:
                return index + 1
        return None
    finally:
        setattr(kernels, mutant_name, original)


class TestMutationDetection:
    def test_monus_keeping_zero_rows_is_caught(self):
        def patch(orig):
            def patched(left, right):
                get = right.get
                for value, count in left.items():
                    remaining = count - get(value, 0)
                    if remaining >= 0:
                        yield value, max(1, remaining)
            return patched

        assert _detect("k_monus", patch) is not None

    def test_nest_collapsing_group_multiplicities_is_caught(self):
        def patch(orig):
            def patched(counts, group_indices):
                for value, count in orig(counts, group_indices):
                    items = value.items()
                    inner = items[-1]
                    if isinstance(inner, Bag):
                        value = Tup(*items[:-1],
                                    Bag(list(inner.distinct())))
                    yield value, count
            return patched

        assert _detect("k_nest", patch) is not None

    def test_unnest_dropping_multiplicity_product_is_caught(self):
        def patch(orig):
            def patched(rows, index):
                seen = {}
                for value, count in orig(rows, index):
                    seen[value] = seen.get(value, 0) + 1
                yield from seen.items()
            return patched

        assert _detect("k_unnest", patch) is not None
