"""Tests for the interactive shell (repro.cli)."""

from __future__ import annotations

import io

import pytest

from repro.cli import Session
from repro.core.bag import Bag, Tup


def _session():
    out = io.StringIO()
    return Session(out=out), out


class TestBindingsAndEvaluation:
    def test_binding_and_use(self):
        session, out = _session()
        assert session.handle("B = {{['a','b'], ['a','b']}}")
        assert session.handle("pi[1](B)")
        assert session.bindings["B"].cardinality == 2
        assert "['a']*2" in out.getvalue()

    def test_expression_without_binding(self):
        session, out = _session()
        session.handle("{{'x'}} (+) {{'x'}}")
        assert "'x'*2" in out.getvalue()

    def test_sigma_equals_is_not_a_binding(self):
        session, out = _session()
        session.handle("B = {{['a']}}")
        session.handle("sigma[t: alpha1(t) = 'a'](B)")
        assert "['a']" in out.getvalue()

    def test_env_listing(self):
        session, out = _session()
        session.handle(":env")
        assert "(no bindings)" in out.getvalue()
        session.handle("B = {{'x'}}")
        session.handle(":env")
        assert "B = " in out.getvalue()

    def test_empty_line_is_noop(self):
        session, _ = _session()
        assert session.handle("   ")


class TestCommands:
    def test_type_command(self):
        session, out = _session()
        session.handle("B = {{['a','b']}}")
        session.handle(":type pi[1](B)")
        assert "{{[U]}}" in out.getvalue()

    def test_fragment_command(self):
        session, out = _session()
        session.handle("B = {{['a']}}")
        session.handle(":fragment P(B)")
        assert "BALG^2_1" in out.getvalue()

    def test_optimize_command(self):
        session, out = _session()
        session.handle("B = {{['a']}}")
        session.handle(":optimize eps(eps(B))")
        assert "eps(B)" in out.getvalue()

    def test_unknown_command(self):
        session, out = _session()
        session.handle(":wat B")
        assert "unknown command" in out.getvalue()

    def test_quit(self):
        session, _ = _session()
        assert not session.handle(":quit")
        assert not session.handle(":q")

    def test_errors_are_reported_not_raised(self):
        session, out = _session()
        session.handle("P(")                      # parse error
        session.handle("undefined_bag")           # unbound variable
        session.handle("{{'a'}} x {{'b'}}")       # type error
        text = out.getvalue()
        assert text.count("error:") == 3


class TestEngineSelection:
    def test_engine_command_shows_and_switches(self):
        session, out = _session()
        session.handle(":engine")
        assert "engine = physical" in out.getvalue()
        session.handle(":engine tree")
        assert session.engine == "tree"
        session.handle(":engine physical")
        assert session.engine == "physical"

    def test_engine_command_rejects_unknown(self):
        session, out = _session()
        session.handle(":engine quantum")
        assert "unknown engine" in out.getvalue()
        assert session.engine == "physical"

    def test_both_engines_agree_in_session(self):
        physical, phys_out = _session()
        physical.handle("B = {{['a','b'], ['a','b'], ['b','a']}}")
        physical.handle("eps(B) - B")
        tree = Session(out=io.StringIO(), engine="tree")
        tree.handle("B = {{['a','b'], ['a','b'], ['b','a']}}")
        tree.handle("eps(B) - B")
        assert phys_out.getvalue() == tree.out.getvalue()

    def test_session_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            Session(engine="quantum")

    def test_explain_shows_both_plans(self):
        session, out = _session()
        session.handle("B = {{['a','b'], ['a','b'], ['b','a']}}")
        session.handle(":explain eps(B) - B")
        text = out.getvalue()
        assert "-- logical --" in text
        assert "-- physical --" in text
        assert "kernel=monus" in text
        assert "actual rows" in text

    def test_parse_engine_flag(self):
        from repro.cli import _parse_engine_flag
        (engine, workers, backend, opt_level, resilience, semiring,
         rest) = _parse_engine_flag(
            ["--engine", "tree", "--max-steps", "5", "f.bag"])
        assert opt_level is None
        assert semiring is None
        assert engine == "tree"
        assert workers is None
        assert backend == "thread"
        assert resilience is False
        assert rest == ["--max-steps", "5", "f.bag"]
        (engine, workers, backend, opt_level, resilience, semiring,
         rest) = _parse_engine_flag(
            ["--engine=physical", "--opt-level=2",
             "--semiring=tropical"])
        assert semiring == "tropical"
        assert opt_level == 2
        assert engine == "physical"
        assert rest == []

    def test_parse_engine_flag_parallel(self):
        from repro.cli import _parse_engine_flag
        (engine, workers, backend, opt_level, resilience, semiring,
         rest) = _parse_engine_flag(
            ["--engine", "parallel", "--workers", "4",
             "--parallel-backend=process", "--resilience", "f.bag"])
        assert engine == "parallel"
        assert workers == 4
        assert backend == "process"
        assert resilience is True
        assert rest == ["f.bag"]

    def test_parse_engine_flag_rejects_bad_values(self):
        from repro.cli import _parse_engine_flag
        with pytest.raises(ValueError):
            _parse_engine_flag(["--engine"])
        with pytest.raises(ValueError):
            _parse_engine_flag(["--engine", "quantum"])
        with pytest.raises(ValueError):
            _parse_engine_flag(["--workers", "zero"])
        with pytest.raises(ValueError):
            _parse_engine_flag(["--workers", "0"])
        with pytest.raises(ValueError):
            _parse_engine_flag(["--parallel-backend", "fiber"])
        with pytest.raises(ValueError):
            _parse_engine_flag(["--resilience=yes"])
        with pytest.raises(ValueError):
            _parse_engine_flag(["--semiring", "viterbi"])

    def test_main_accepts_engine_flag(self, tmp_path):
        from repro.cli import main
        script = tmp_path / "session.bag"
        script.write_text("B = {{['a'], ['a']}}\neps(B)\n",
                          encoding="utf-8")
        assert main(["--engine", "tree", str(script)]) == 0
        assert main(["--engine=physical", str(script)]) == 0
        assert main(["--engine", "quantum", str(script)]) == 2


class TestFileMode:
    def test_script_execution(self, tmp_path):
        script = tmp_path / "session.bag"
        script.write_text(
            "# a comment\n"
            "B = {{['a'], ['a'], ['b']}}\n"
            "eps(B)\n"
            ":fragment eps(B)\n",
            encoding="utf-8")
        from repro.cli import main
        assert main([str(script)]) == 0


class TestPersistenceCommands:
    def test_encode_command(self):
        session, out = _session()
        session.handle("B = {{'a', 'a'}}")
        session.handle(":encode B")
        assert "{(sa),(sa)}" in out.getvalue()

    def test_save_and_load_round_trip(self, tmp_path):
        session, out = _session()
        session.handle("B = {{['a','b'], ['a','b']}}")
        target = tmp_path / "bag.enc"
        session.handle(f":save B {target}")
        assert target.exists()
        fresh, fresh_out = _session()
        fresh.handle(f":load C {target}")
        assert fresh.bindings["C"] == session.bindings["B"]

    def test_save_unknown_binding(self):
        session, out = _session()
        session.handle(":save ghost /tmp/nope.enc")
        assert "no binding" in out.getvalue()

    def test_usage_messages(self):
        session, out = _session()
        session.handle(":save onlyname")
        session.handle(":load onlyname")
        assert out.getvalue().count("usage:") == 2


class TestResourceLimitFlags:
    def test_parse_limit_flags(self):
        from repro.cli import parse_limit_flags
        limits, paths = parse_limit_flags(
            ["--max-steps", "100", "--timeout=2.5", "script.bag"])
        assert limits.max_steps == 100
        assert limits.timeout == 2.5
        assert limits.max_size is None
        assert paths == ["script.bag"]

    def test_no_flags_means_no_limits(self):
        from repro.cli import parse_limit_flags
        limits, paths = parse_limit_flags(["a.bag", "b.bag"])
        assert limits is None
        assert paths == ["a.bag", "b.bag"]

    def test_unknown_option_rejected(self):
        from repro.cli import parse_limit_flags
        with pytest.raises(ValueError):
            parse_limit_flags(["--frobnicate", "1"])

    def test_missing_value_rejected(self):
        from repro.cli import parse_limit_flags
        with pytest.raises(ValueError):
            parse_limit_flags(["--max-steps"])

    def test_bad_value_rejected(self):
        from repro.cli import parse_limit_flags
        with pytest.raises(ValueError):
            parse_limit_flags(["--max-steps", "soon"])

    def test_main_returns_2_on_bad_flag(self, tmp_path):
        from repro.cli import main
        assert main(["--frobnicate"]) == 2

    def test_governed_session_reports_blow_up_and_survives(self):
        from repro.guard import Limits
        out = io.StringIO()
        session = Session(out=out, limits=Limits(powerset_budget=8))
        session.handle("P({{'a','b','c','d'}})")
        assert "error:" in out.getvalue()
        session.handle("{{'a'}} (+) {{'a'}}")
        assert "'a'*2" in out.getvalue()

    def test_limits_command(self):
        from repro.guard import Limits
        out = io.StringIO()
        session = Session(out=out, limits=Limits(max_steps=7))
        session.handle(":limits")
        assert "max_steps = 7" in out.getvalue()
        bare, bare_out = _session()
        bare.handle(":limits")
        assert "(no limits" in bare_out.getvalue()

    def test_governed_script_run(self, tmp_path):
        from repro.cli import main
        script = tmp_path / "hostile.bag"
        script.write_text(
            "B = {{'a','b','c','d','e'}}\n"
            "P(B)          # blows the powerset budget\n"
            "eps(B)        # still works afterwards\n",
            encoding="utf-8")
        assert main(["--powerset-budget", "8", str(script)]) == 0
