"""Tests for the relational baselines: set semantics, the Prop 4.2
translation, and CALC1 (repro.relational)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.bag import Bag, EMPTY_BAG, Tup
from repro.core.derived import (
    card_greater_expr, is_nonempty, project_expr, select_attr_eq_const,
)
from repro.core.errors import BagTypeError
from repro.core.eval import evaluate
from repro.core.expr import (
    Cartesian, Const, Dedup, Lam, Map, Powerset, Select, Subtraction,
    Tupling, Var, var,
)
from repro.core.types import BagType, U
from repro.games.structures import CoStructure, SET_OF_ATOMS, set_of
from repro.relational import (
    And, Component, Contained, Eq, Exists, Forall, Member, Not, Or,
    Rel, TermConst, TermVar, deep_dedup, is_set_value, quantifier_depth,
    ralg_translate, relational_evaluate, satisfies, supports_agree,
    variable_names, SetEvaluator,
)
from tests.conftest import flat_bags


class TestDeepDedup:
    def test_flat(self, sample_bag):
        assert deep_dedup(sample_bag).is_set()

    def test_nested(self):
        nested = Bag([Bag(["a", "a"]), Bag(["a", "a"]), Bag(["b"])])
        cleaned = deep_dedup(nested)
        assert cleaned.is_set()
        assert all(inner.is_set() for inner in cleaned.distinct())

    def test_inside_tuples(self):
        value = Tup("x", Bag(["a", "a"]))
        assert deep_dedup(value) == Tup("x", Bag(["a"]))

    @given(flat_bags())
    def test_idempotent(self, bag):
        once = deep_dedup(bag)
        assert deep_dedup(once) == once
        assert is_set_value(once)


class TestSetSemantics:
    def test_additive_union_collapses_to_union(self):
        left = Bag.of(Tup("a"))
        right = Bag.of(Tup("a"), Tup("b"))
        result = relational_evaluate(var("L") + var("R"), L=left, R=right)
        assert result == Bag.of(Tup("a"), Tup("b"))

    def test_inputs_are_coerced(self):
        noisy = Bag.from_counts({Tup("a"): 5})
        assert relational_evaluate(var("B"), B=noisy) == Bag.of(Tup("a"))

    def test_product_is_relational(self):
        left = Bag.from_counts({Tup("a"): 2})
        right = Bag.from_counts({Tup("x"): 3})
        result = relational_evaluate(var("L") * var("R"), L=left, R=right)
        assert result == Bag.of(Tup("a", "x"))

    def test_powerset_of_set(self):
        result = relational_evaluate(Powerset(var("B")),
                                     B=Bag.of(Tup("a"), Tup("b")))
        assert result.cardinality == 4  # the relational powerset

    def test_cardinality_query_degenerates_under_sets(self):
        """The crux of Example 4.2: under set semantics the counting
        trick stops working (pi_1(RxR) - pi_1(RxS) only sees supports).
        """
        R = Bag.of(Tup(1), Tup(2), Tup(3))
        S = Bag.of(Tup(8), Tup(9))
        query = card_greater_expr(var("R"), var("S"))
        assert is_nonempty(evaluate(query, R=R, S=S))          # bags: yes
        assert not is_nonempty(relational_evaluate(query, R=R, S=S))


class TestProposition42:
    """The constructive translation Q -> Q' and its support agreement."""

    def _queries(self):
        B = var("B")
        return [
            B,
            B + B,
            B & (B + B),
            B | B,
            Dedup(B + B),
            project_expr(Cartesian(B, B), 1, 3),
            select_attr_eq_const(B, 1, "a"),
            Map(Lam("t", Tupling(Const("k"), Var("t"))), B),
        ]

    @given(flat_bags(arity=2, max_size=6))
    def test_supports_agree_on_battery(self, bag):
        for query in self._queries():
            assert supports_agree(query, {"B": bag}), query

    def test_translation_drops_dedup(self):
        translated = ralg_translate(Dedup(var("B")))
        assert translated == var("B")

    def test_translation_replaces_additive_union(self):
        from repro.core.expr import MaxUnion
        translated = ralg_translate(var("A") + var("B"))
        assert isinstance(translated, MaxUnion)

    def test_subtraction_rejected(self):
        """The fragment of Prop 4.2 excludes subtraction — that is
        exactly where BALG^1 outgrows RALG (Prop 4.3)."""
        with pytest.raises(BagTypeError):
            ralg_translate(Subtraction(var("A"), var("B")))

    def test_powerset_rejected(self):
        with pytest.raises(BagTypeError):
            ralg_translate(Powerset(var("B")))

    def test_set_inputs_make_results_equal(self):
        """On relational databases (set in, set out) Q and Q' agree
        exactly, not just on supports."""
        relation = Bag.of(Tup("a", "b"), Tup("b", "c"))
        query = project_expr(var("B"), 1)
        bag_out = evaluate(Dedup(query), B=relation)
        set_out = SetEvaluator().run(ralg_translate(Dedup(query)),
                                     {"B": relation})
        assert bag_out == set_out


class TestCalc1:
    def _triangle(self) -> CoStructure:
        a, b, c = set_of(1), set_of(2), set_of(3)
        return CoStructure.build(
            {1, 2, 3}, {"E": {(a, b), (b, c), (c, a)}})

    def test_relation_atom(self):
        structure = self._triangle()
        sentence = Exists("x", SET_OF_ATOMS, Exists(
            "y", SET_OF_ATOMS, Rel("E", [TermVar("x"), TermVar("y")])))
        assert satisfies(structure, sentence)

    def test_no_self_loop(self):
        structure = self._triangle()
        self_loop = Exists("x", SET_OF_ATOMS,
                           Rel("E", [TermVar("x"), TermVar("x")]))
        assert not satisfies(structure, self_loop)

    def test_membership_and_containment(self):
        structure = self._triangle()
        # every edge source is a set containing some atom
        sentence = Forall("x", SET_OF_ATOMS, Forall(
            "y", SET_OF_ATOMS,
            Not(Rel("E", [TermVar("x"), TermVar("y")]))))
        assert not satisfies(structure, sentence)
        member = Exists("a", U, Exists(
            "x", SET_OF_ATOMS, Member(TermVar("a"), TermVar("x"))))
        assert satisfies(structure, member)
        contained = Forall("x", SET_OF_ATOMS,
                           Contained(TermVar("x"), TermVar("x")))
        assert satisfies(structure, contained)

    def test_equality_and_constants(self):
        structure = self._triangle()
        sentence = Exists("x", SET_OF_ATOMS,
                          Eq(TermVar("x"), TermConst(set_of(1))))
        assert satisfies(structure, sentence)

    def test_component_function(self):
        # a structure with a tuple-valued relation to exercise ".i"
        pair = Tup(1, 2)
        structure = CoStructure.build({1, 2}, {"P": {(pair,)}})
        from repro.core.types import TupleType
        tuple_type = TupleType((U, U))
        sentence = Exists(
            "t", tuple_type,
            And(Rel("P", [TermVar("t")]),
                Eq(Component(TermVar("t"), 1), TermConst(1))))
        assert satisfies(structure, sentence)

    def test_quantifier_depth_and_variables(self):
        sentence = Exists("x", U, Forall("y", U,
                                         Eq(TermVar("x"), TermVar("y"))))
        assert quantifier_depth(sentence) == 2
        assert variable_names(sentence) == frozenset({"x", "y"})

    def test_implies(self):
        from repro.relational import Implies
        structure = self._triangle()
        sentence = Forall("x", SET_OF_ATOMS, Implies(
            Rel("E", [TermVar("x"), TermVar("x")]),
            Eq(TermVar("x"), TermVar("x"))))
        assert satisfies(structure, sentence)


class TestTheorem53Link:
    """CALC1 sentences with few variables cannot distinguish the Fig. 1
    pair when the duplicator wins the game with that many moves."""

    def test_one_variable_sentences_agree(self):
        from repro.games import build_star_graphs, duplicator_wins
        pair = build_star_graphs(4)
        game = duplicator_wins(pair.balanced, pair.unbalanced,
                               [U, SET_OF_ATOMS], 1)
        assert game.duplicator_wins
        # a battery of 1-variable sentences: all must agree on G, G'
        sentences = [
            Exists("x", SET_OF_ATOMS, Rel("E", [TermVar("x"),
                                                TermVar("x")])),
            Exists("x", SET_OF_ATOMS, Eq(TermVar("x"), TermVar("x"))),
            Forall("x", U, Exists("y", SET_OF_ATOMS,
                                  Member(TermVar("x"), TermVar("y")))),
        ]
        for sentence in sentences:
            if quantifier_depth(sentence) > 1:
                continue
            assert (satisfies(pair.balanced, sentence)
                    == satisfies(pair.unbalanced, sentence)), sentence

    def test_distinguishing_sentence_needs_more_variables(self):
        """The flipped edge IS visible to a 2-variable sentence — and
        indeed the duplicator can lose positions when the spoiler
        exhibits both endpoints (our G/G' differ on a single edge pair,
        but property (1) hides it only up to n > 2k)."""
        from repro.games import build_star_graphs
        from repro.core.bag import canonical_key
        pair = build_star_graphs(4)
        flipped = min(pair.out_nodes, key=canonical_key)
        # 'exists x,y with E(x, y) and y = alpha and x = flipped':
        # true in G' (the inverted edge), false in G.
        sentence = Exists(
            "x", SET_OF_ATOMS, Exists(
                "y", SET_OF_ATOMS,
                And(Rel("E", [TermVar("x"), TermVar("y")]),
                    And(Eq(TermVar("y"), TermConst(pair.center)),
                        Eq(TermVar("x"), TermConst(flipped))))))
        in_balanced = satisfies(pair.balanced, sentence)
        in_unbalanced = satisfies(pair.unbalanced, sentence)
        assert in_balanced != in_unbalanced
