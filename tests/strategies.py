"""Hypothesis strategies generating random *well-typed* BALG^1
expressions.

Used to fuzz independent components against each other:

* evaluator vs. the symbolic counting analysis (Prop 4.1's claim);
* evaluator vs. the optimizer (rewrite soundness);
* parser/printer round trips;
* bag semantics vs. set semantics supports (Prop 4.2).

The generator produces expressions over a single bag variable ``B`` of
type ``{{U^input_arity}}`` using the BALG^1 operator set.  Flags carve
out the fragments the paper's propositions quantify over:
``include_dedup`` / ``include_subtraction`` for Props 4.1/4.2, and
``allow_input_atom`` to control whether the distinguished constant
``a`` may appear inside the expression (the counting-lemma claim and
the genericity law both hypothesise it does not).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.bag import Bag, Tup
from repro.core.expr import (
    AdditiveUnion, Attribute, Cartesian, Const, Dedup, Expr,
    Intersection, Lam, Map, MaxUnion, Select, Subtraction, Tupling,
    Var,
)

#: Constants used inside generated expressions.  The distinguished
#: input atom "a" is excluded (the counting-lemma hypothesis).
EXPR_ATOMS = ("b", "c")

INPUT_NAME = "B"


def _constant_bag(arity: int, draw) -> Bag:
    count = draw(st.integers(1, 3))
    tuples = [Tup(*(draw(st.sampled_from(EXPR_ATOMS))
                    for _ in range(arity)))
              for _ in range(count)]
    return Bag(tuples)


@st.composite
def _tuple_lambda(draw, in_arity: int, out_arity: int) -> Lam:
    """A restricted MAP lambda: projections and constants only."""
    parts = []
    for _ in range(out_arity):
        if draw(st.booleans()):
            parts.append(Attribute(Var("·g"),
                                   draw(st.integers(1, in_arity))))
        else:
            parts.append(Const(draw(st.sampled_from(EXPR_ATOMS))))
    return Lam("·g", Tupling(*parts))


@st.composite
def balg1_exprs(draw, arity: int = 2, input_arity: int = 2,
                max_depth: int = 4,
                include_dedup: bool = True,
                include_subtraction: bool = True,
                include_order: bool = False,
                allow_input_atom: bool = True):
    """A random BALG^1 expression of result type ``{{U^arity}}`` over
    the input variable ``B`` of type ``{{U^input_arity}}``."""
    expr, _ = draw(_expr(arity, input_arity, max_depth, include_dedup,
                         include_subtraction, include_order,
                         allow_input_atom))
    return expr


@st.composite
def _expr(draw, arity: int, input_arity: int, depth: int, dedup: bool,
          minus: bool, order: bool, input_atom: bool):
    """Returns (expression, result_arity)."""
    if depth <= 0 or draw(st.integers(0, 3)) == 0:
        # leaves: the input (when arities match) or a constant bag
        if arity == input_arity and draw(st.booleans()):
            return Var(INPUT_NAME), arity
        return Const(_constant_bag(arity, draw)), arity

    choices = ["union", "max", "inter", "map", "select"]
    if minus:
        choices.append("minus")
    if dedup:
        choices.append("dedup")
    if arity >= 2:
        choices.append("product")
    kind = draw(st.sampled_from(choices))

    if kind == "product":
        left_arity = draw(st.integers(1, arity - 1))
        left, _ = draw(_expr(left_arity, input_arity, depth - 1, dedup,
                             minus, order, input_atom))
        right, _ = draw(_expr(arity - left_arity, input_arity,
                              depth - 1, dedup, minus, order,
                              input_atom))
        return Cartesian(left, right), arity
    if kind in ("union", "max", "inter", "minus"):
        left, _ = draw(_expr(arity, input_arity, depth - 1, dedup,
                             minus, order, input_atom))
        right, _ = draw(_expr(arity, input_arity, depth - 1, dedup,
                              minus, order, input_atom))
        node = {"union": AdditiveUnion, "max": MaxUnion,
                "inter": Intersection, "minus": Subtraction}[kind]
        return node(left, right), arity
    if kind == "dedup":
        inner, _ = draw(_expr(arity, input_arity, depth - 1, dedup,
                              minus, order, input_atom))
        return Dedup(inner), arity
    if kind == "map":
        in_arity = draw(st.integers(1, 3))
        inner, _ = draw(_expr(in_arity, input_arity, depth - 1, dedup,
                              minus, order, input_atom))
        lam = draw(_tuple_lambda(in_arity, arity))
        return Map(lam, inner), arity
    # select
    inner, _ = draw(_expr(arity, input_arity, depth - 1, dedup, minus,
                          order, input_atom))
    index = draw(st.integers(1, arity))
    comparator = draw(st.sampled_from(
        ("eq", "ne", "le", "lt") if order else ("eq", "ne")))
    if draw(st.booleans()):
        other = draw(st.integers(1, arity))
        right_body = Attribute(Var("·s"), other)
    else:
        alphabet = EXPR_ATOMS + (("a",) if input_atom else ())
        right_body = Const(draw(st.sampled_from(alphabet)))
    return Select(Lam("·s", Attribute(Var("·s"), index)),
                  Lam("·s", right_body), inner,
                  op=comparator), arity


@st.composite
def input_bags(draw, arity: int = 2, max_size: int = 6):
    """Random flat inputs for the generated expressions, over an
    alphabet that overlaps the expression constants."""
    atoms = ("a", "b", "c")
    tuples = [Tup(*(draw(st.sampled_from(atoms)) for _ in range(arity)))
              for _ in range(draw(st.integers(0, max_size)))]
    return Bag(tuples)
