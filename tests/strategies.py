"""Hypothesis strategies generating random *well-typed* BALG
expressions — thin wrappers over :mod:`repro.testkit.generate`.

The grammar lives in the testkit (seeded ``random.Random``, no
Hypothesis dependency) so that the differential fuzz CLI, the corpus
replay, and these property tests all draw from one generator.  The
strategies here adapt it to Hypothesis by drawing a deterministic
``Random`` (``st.randoms(use_true_random=False)``), which keeps runs
reproducible under Hypothesis's database while the testkit keeps
byte-for-byte replay from a ``(seed, index)`` pair.

``balg1_exprs``/``input_bags`` keep the historical BALG^1 surface the
existing properties quantify over (single relation ``B``, flat tuples,
flags carving out Props 4.1/4.2 and the genericity law);
``testkit_cases`` adds the nested, multi-relation BALG^1/2/3 coverage.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.testkit.generate import (
    ATOMS, EXPR_ATOMS, INPUT_NAME, Case, CaseGenerator, balg1_expr,
    flat_input_bag,
)

__all__ = ["EXPR_ATOMS", "INPUT_NAME", "balg1_exprs", "input_bags",
           "testkit_cases"]


@st.composite
def balg1_exprs(draw, arity: int = 2, input_arity: int = 2,
                max_depth: int = 4,
                include_dedup: bool = True,
                include_subtraction: bool = True,
                include_order: bool = False,
                allow_input_atom: bool = True):
    """A random BALG^1 expression of result type ``{{U^arity}}`` over
    the input variable ``B`` of type ``{{U^input_arity}}``."""
    rng = draw(st.randoms(use_true_random=False))
    return balg1_expr(rng, arity=arity, input_arity=input_arity,
                      max_depth=max_depth,
                      include_dedup=include_dedup,
                      include_subtraction=include_subtraction,
                      include_order=include_order,
                      allow_input_atom=allow_input_atom)


@st.composite
def input_bags(draw, arity: int = 2, max_size: int = 6):
    """Random flat inputs for the generated expressions, over an
    alphabet that overlaps the expression constants."""
    rng = draw(st.randoms(use_true_random=False))
    return flat_input_bag(rng, arity=arity, max_size=max_size)


@st.composite
def testkit_cases(draw, fragment: str = "mixed",
                  size: int = 12) -> Case:
    """A full nested, multi-relation differential case (schema +
    database + expression) from the testkit generator."""
    rng = draw(st.randoms(use_true_random=False))
    if fragment == "mixed":
        fragment = rng.choice(("balg1", "balg2", "balg3"))
    generator = CaseGenerator(rng, fragment=fragment, size=size)
    return generator.case()
