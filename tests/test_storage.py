"""The storage layer: loaders, generators, catalog, workspaces.

Covers the persistence half of the subsystem — the planner-facing
half (zero-scan compiles, selectivity, estimator honesty, plan
shapes, feedback) lives in ``tests/test_storage_planner.py``.
"""

import json
import os

import pytest

from repro.core.bag import Bag, Tup
from repro.core.errors import BagTypeError
from repro.core.eval import evaluate as oracle_evaluate
from repro.engine import EngineStats, evaluate as engine_evaluate
from repro.sql import Catalog as SqlCatalog, run_sql
from repro.storage import (
    Catalog, ColumnSpec, RelationSpec, Workspace, load_csv, load_json,
    parse_columns, parse_relation_spec, synthesize_bag,
)
from repro.storage.catalog import ColumnStats, MCV_KEEP
from repro.storage.cli import main as workspace_main
from repro.storage.loaders import decode_rows, decode_value, \
    encode_rows, encode_value
from repro.core.expr import var


# ----------------------------------------------------------------------
# Value encoding and loaders
# ----------------------------------------------------------------------

def test_encode_decode_value_round_trip():
    nested = Bag.from_counts({Tup(1, "x"): 2, Tup(2, "y"): 1})
    value = Tup(3, nested, "atom", True)
    assert decode_value(encode_value(value)) == value


def test_encode_rows_is_canonically_ordered():
    bag = Bag.from_counts({Tup(2, "b"): 1, Tup(1, "a"): 3})
    rows = encode_rows(bag)
    assert rows == [[[1, "a"], 3], [[2, "b"], 1]]
    assert decode_rows(rows) == bag


def test_encode_value_rejects_unencodable():
    with pytest.raises(BagTypeError):
        encode_value(object())


def test_parse_columns():
    specs = parse_columns("id:int, name:str, score:float, ok:bool")
    assert [spec.name for spec in specs] == ["id", "name", "score",
                                            "ok"]
    assert specs[0].parse("7") == 7
    assert specs[2].parse("1.5") == 1.5
    assert specs[3].parse("true") is True
    assert specs[3].parse("no") is False
    with pytest.raises(BagTypeError):
        ColumnSpec("x", "decimal")


def test_load_csv_typed_with_duplicates(tmp_path):
    path = tmp_path / "r.csv"
    path.write_text("1,a\n1,a\n2,b\n", encoding="utf-8")
    bag, columns = load_csv(str(path),
                            columns=parse_columns("id:int,tag:str"))
    assert bag == Bag.from_counts({Tup(1, "a"): 2, Tup(2, "b"): 1})
    assert [spec.type for spec in columns] == ["int", "str"]


def test_load_csv_header_inference(tmp_path):
    path = tmp_path / "r.csv"
    path.write_text("id,tag\n1,a\n2,b\n", encoding="utf-8")
    bag, columns = load_csv(str(path))
    # without explicit specs every cell stays a string
    assert bag == Bag.from_counts({Tup("1", "a"): 1, Tup("2", "b"): 1})
    assert [spec.name for spec in columns] == ["id", "tag"]


def test_load_csv_ragged_row_is_an_error(tmp_path):
    path = tmp_path / "r.csv"
    path.write_text("1,a\n2\n", encoding="utf-8")
    with pytest.raises(BagTypeError):
        load_csv(str(path), columns=parse_columns("id:int,tag:str"))


def test_load_json_both_shapes(tmp_path):
    counted = tmp_path / "counted.json"
    counted.write_text(json.dumps({"rows": [[[1, "a"], 2]]}),
                       encoding="utf-8")
    assert load_json(str(counted)) == Bag.from_counts(
        {Tup(1, "a"): 2})
    bare = tmp_path / "bare.json"
    bare.write_text(json.dumps([[1, "a"], [1, "a"], [2, "b"]]),
                    encoding="utf-8")
    assert load_json(str(bare)) == Bag.from_counts(
        {Tup(1, "a"): 2, Tup(2, "b"): 1})


# ----------------------------------------------------------------------
# Synthetic generators
# ----------------------------------------------------------------------

def test_synthesize_exact_totals_and_distinct():
    for skew in ("uniform", "zipfian"):
        spec = RelationSpec("R", rows=1000, arity=2, distinct=100,
                            skew=skew)
        bag = synthesize_bag(spec, seed=5)
        assert bag.cardinality == 1000
        assert bag.distinct_count == 100
        assert all(t.arity == 2 for t in bag.distinct())


def test_synthesize_zipfian_is_skewed():
    spec = RelationSpec("R", rows=1000, arity=1, distinct=50,
                        skew="zipfian", zipf_s=1.3)
    counts = sorted((count for _, count in
                     synthesize_bag(spec, seed=1).items()),
                    reverse=True)
    # the head rank dominates, the tail sits at the floor
    assert counts[0] > 5 * counts[-1]
    assert counts[-1] >= 1


def test_synthesize_same_seed_same_bag_different_seed_differs():
    spec = RelationSpec("R", rows=200, arity=2, distinct=40,
                        skew="zipfian")
    assert synthesize_bag(spec, 9) == synthesize_bag(spec, 9)
    assert synthesize_bag(spec, 9) != synthesize_bag(spec, 10)


def test_synthesize_name_decorrelates_streams():
    base = RelationSpec("R", rows=100, arity=2, distinct=25)
    other = RelationSpec("S", rows=100, arity=2, distinct=25)
    assert synthesize_bag(base, 3) != synthesize_bag(other, 3)


def test_parse_relation_spec():
    spec = parse_relation_spec(
        "R:rows=1000,arity=3,distinct=100,skew=zipfian,s=1.5")
    assert spec == RelationSpec("R", rows=1000, arity=3, distinct=100,
                                skew="zipfian", zipf_s=1.5)
    with pytest.raises(BagTypeError):
        parse_relation_spec("R:rows=10,skew=gauss")


# ----------------------------------------------------------------------
# Catalog statistics
# ----------------------------------------------------------------------

def _skewed_bag():
    return Bag.from_counts({Tup(1, "a"): 6, Tup(1, "b"): 2,
                            Tup(2, "b"): 1, Tup(3, "c"): 1})


def test_analyze_bag_statistics():
    catalog = Catalog()
    entry = catalog.analyze_bag("R", _skewed_bag())
    assert entry.cardinality == 10.0
    assert entry.distinct == 4.0
    assert entry.arity == 2
    assert entry.epoch == 1
    # multiplicity histogram: two elements at 1, one at 2, one at 6
    assert entry.mult_histogram == ((1, 2), (2, 1), (6, 1))
    first, second = entry.column_stats
    assert first.distinct == 3
    assert first.eq_fraction(1) == pytest.approx(0.8)
    assert second.eq_fraction("b") == pytest.approx(0.3)


def test_analyze_atom_relation_has_no_columns():
    catalog = Catalog()
    entry = catalog.analyze_bag(
        "M", Bag.from_counts({"a": 2, "b": 1}))
    assert entry.arity is None
    assert entry.column_stats == ()
    # estimates still work, selectivity just declines
    assert catalog.selectivity_oracle() is not None


def test_analyze_nested_bag_average_element_size():
    inner_a = Bag.from_counts({Tup(1,): 2})
    inner_b = Bag.from_counts({Tup(2,): 4})
    catalog = Catalog()
    entry = catalog.analyze_bag(
        "N", Bag.from_counts({inner_a: 1, inner_b: 1}))
    assert entry.avg_element_size == pytest.approx(3.0)


def test_reanalyze_bumps_epoch():
    catalog = Catalog()
    assert catalog.analyze_bag("R", _skewed_bag()).epoch == 1
    assert catalog.analyze_bag("R", _skewed_bag()).epoch == 2


def test_eq_fraction_off_mcv_uses_residual_mass():
    mcv = tuple((value, 0.09) for value in range(MCV_KEEP))
    stats = ColumnStats(distinct=MCV_KEEP + 14, mcv=mcv)
    expected = (1.0 - 0.09 * MCV_KEEP) / 14
    assert stats.eq_fraction("unseen") == pytest.approx(expected)
    # every distinct value on the MCV list: unseen values impossible
    assert ColumnStats(distinct=2, mcv=((1, 0.6), (2, 0.4))
                       ).eq_fraction(3) == 0.0


def test_absorb_is_bounded_and_deadbanded():
    catalog = Catalog()
    for index in range(12):
        catalog.analyze_bag(f"R{index:02d}",
                            Bag.from_counts({Tup(1,): 100}))
    observed = {f"R{index:02d}": 300.0 for index in range(12)}
    observed["R03"] = 101.0          # inside the 5% deadband
    observed["unknown"] = 50.0       # never cataloged
    updated = catalog.absorb(observed)
    assert len(updated) == 8         # max_updates bound
    assert "R03" not in updated
    assert "unknown" not in updated
    entry = catalog.get(updated[0])
    assert entry.cardinality == 300.0
    assert entry.epoch == 2
    # distinct can never exceed the observed cardinality
    assert catalog.absorb({"R09": 0.5}) == ["R09"]
    assert catalog.get("R09").cardinality == 0.5
    assert catalog.get("R09").distinct == 0.5


def test_catalog_document_round_trip():
    catalog = Catalog()
    catalog.analyze_bag("R", _skewed_bag(),
                        columns=parse_columns("id:int,tag:str"))
    document = catalog.to_document()
    clone = Catalog.from_document(
        json.loads(json.dumps(document, sort_keys=True)))
    assert clone.to_document() == document
    entry = clone.get("R")
    assert entry.columns == parse_columns("id:int,tag:str")
    assert entry.column_stats[1].eq_fraction("b") == pytest.approx(0.3)


# ----------------------------------------------------------------------
# Workspaces
# ----------------------------------------------------------------------

def test_workspace_round_trip(tmp_path):
    root = str(tmp_path / "ws")
    workspace = Workspace.create(root, name="trip")
    bag = _skewed_bag()
    workspace.save_relation("R", bag,
                            columns=parse_columns("id:int,tag:str"))
    workspace.analyze()
    reopened = Workspace.open(root)
    assert reopened.name == "trip"
    assert reopened.load_relation("R") == bag
    assert reopened.columns_of("R") == parse_columns("id:int,tag:str")
    assert reopened.catalog.get("R").cardinality == 10.0
    assert reopened.database() == {"R": bag}


def test_workspace_refuses_to_clobber(tmp_path):
    root = str(tmp_path / "ws")
    Workspace.create(root)
    with pytest.raises(BagTypeError):
        Workspace.create(root)
    with pytest.raises(BagTypeError):
        Workspace.open(str(tmp_path / "elsewhere"))


def test_workspace_rejects_bad_relation_names(tmp_path):
    workspace = Workspace.create(str(tmp_path / "ws"))
    for name in ("", "../evil", ".hidden"):
        with pytest.raises(BagTypeError):
            workspace.save_relation(name, Bag())


def test_workspace_same_seed_byte_identical(tmp_path):
    specs = (RelationSpec("R", rows=64, arity=2, distinct=16),
             RelationSpec("S", rows=64, arity=2, distinct=8,
                          skew="zipfian"))
    contents = []
    for which in ("a", "b"):
        root = tmp_path / which
        workspace = Workspace.create(str(root), name="same")
        workspace.generate(specs, seed=42)
        workspace.analyze()
        files = {}
        for base, _, names in os.walk(root):
            for name in names:
                path = os.path.join(base, name)
                rel = os.path.relpath(path, root)
                with open(path, "rb") as handle:
                    files[rel] = handle.read()
        contents.append(files)
    assert contents[0] == contents[1]


def test_workspace_queries_agree_across_engines(tmp_path):
    """The acceptance round-trip: generate → ANALYZE → reopen → the
    same query is bag-identical on the oracle, the physical engine,
    and the parallel engine, compiled against the catalog."""
    root = str(tmp_path / "ws")
    workspace = Workspace.create(root)
    workspace.generate((RelationSpec("R", rows=60, arity=2,
                                     distinct=12, domain=6),
                        RelationSpec("S", rows=60, arity=2, distinct=6,
                                     domain=6, skew="zipfian")),
                       seed=11)
    workspace.analyze()
    reopened = Workspace.open(root)
    database = reopened.database()
    expr = (var("R") + var("S")) & var("S")
    oracle = oracle_evaluate(expr, database)
    for engine in ("physical", "parallel"):
        value = engine_evaluate(expr, database, engine=engine,
                                cache=None, catalog=reopened,
                                workers=2)
        assert value == oracle, engine


def test_workspace_feedback_persists(tmp_path):
    root = str(tmp_path / "ws")
    workspace = Workspace.create(root)
    workspace.save_relation("R", Bag.from_counts({Tup(1,): 4}))
    workspace.analyze()
    # the relation drifts on disk; feedback folds the observation in
    workspace.save_relation("R", Bag.from_counts({Tup(1,): 9}))
    updated = workspace.absorb_feedback({"R": 9.0})
    assert updated == ["R"]
    reopened = Workspace.open(root)
    assert reopened.catalog.get("R").cardinality == 9.0
    assert reopened.catalog.get("R").epoch == 2


# ----------------------------------------------------------------------
# Workspace CLI
# ----------------------------------------------------------------------

def test_workspace_cli_create_analyze_ls(tmp_path, capsys):
    root = str(tmp_path / "ws")
    assert workspace_main(
        ["create", root, "--seed", "7", "--relations",
         "R:rows=120,arity=2,distinct=12,skew=zipfian,s=1.3"]) == 0
    assert workspace_main(["ls", root]) == 0
    assert workspace_main(["analyze", root, "R"]) == 0
    out = capsys.readouterr().out
    assert "R" in out
    workspace = Workspace.open(root)
    assert workspace.load_relation("R").cardinality == 120
    assert workspace.catalog.get("R").epoch == 2  # create + analyze


def test_workspace_cli_load_csv(tmp_path, capsys):
    data = tmp_path / "r.csv"
    data.write_text("1,a\n1,a\n2,b\n", encoding="utf-8")
    root = str(tmp_path / "ws")
    assert workspace_main(
        ["load", root, "--csv", f"R={data}", "--columns",
         "R=id:int,tag:str"]) == 0
    workspace = Workspace.open(root)
    assert workspace.load_relation("R") == Bag.from_counts(
        {Tup(1, "a"): 2, Tup(2, "b"): 1})
    assert workspace.catalog.get("R").cardinality == 3.0
    capsys.readouterr()


def test_workspace_cli_errors(tmp_path, capsys):
    root = str(tmp_path / "ws")
    assert workspace_main(["ls", root]) == 1         # not a workspace
    workspace_main(["create", root])
    assert workspace_main(["load", root]) == 2       # nothing to load
    assert workspace_main(["create", root]) == 1     # clobber refused
    capsys.readouterr()


def test_cli_dispatches_workspace(tmp_path, capsys):
    from repro.cli import main as repro_main
    root = str(tmp_path / "ws")
    assert repro_main(["workspace", "create", root, "--seed", "3"]) == 0
    assert "workspace" in capsys.readouterr().out


# ----------------------------------------------------------------------
# SQL over workspaces
# ----------------------------------------------------------------------

def _sql_workspace(tmp_path):
    root = str(tmp_path / "ws")
    workspace = Workspace.create(root)
    data = tmp_path / "r.csv"
    data.write_text("1,a\n1,a\n2,b\n3,c\n", encoding="utf-8")
    workspace.import_csv("R", str(data),
                         columns=parse_columns("id:int,tag:str"))
    workspace.analyze()
    return workspace


def test_run_sql_accepts_workspace(tmp_path):
    workspace = _sql_workspace(tmp_path)
    rows = run_sql("SELECT tag FROM R WHERE id = 1", workspace)
    assert rows == [("a",), ("a",)]
    assert run_sql("SELECT COUNT(*) FROM R", workspace) == [(4,)]


def test_run_sql_workspace_positional_columns(tmp_path):
    root = str(tmp_path / "ws")
    workspace = Workspace.create(root)
    workspace.save_relation("R", Bag.from_counts({Tup(1, "a"): 2}))
    workspace.analyze()
    # no declared columns: SQL sees c1..ck from the catalog's arity
    assert run_sql("SELECT c2 FROM R", workspace) == [("a",), ("a",)]


def test_run_sql_literal_catalog_path_unchanged(tmp_path):
    catalog = SqlCatalog({"R": ("id", "tag")})
    database = {"R": Bag.from_counts({Tup(1, "a"): 2, Tup(2, "b"): 1})}
    rows = run_sql("SELECT tag FROM R WHERE id = 1", catalog, database)
    assert rows == [("a",), ("a",)]
    with pytest.raises(TypeError):
        run_sql("SELECT tag FROM R", catalog)


# ----------------------------------------------------------------------
# EngineStats observed counters
# ----------------------------------------------------------------------

def test_engine_stats_records_scans():
    database = {"R": Bag.from_counts({Tup(1,): 5}),
                "S": Bag.from_counts({Tup(2,): 3})}
    stats = EngineStats()
    engine_evaluate(var("R") + var("S"), database, cache=None,
                    stats=stats)
    assert stats.observed_cardinalities == {"R": 5, "S": 3}
    assert stats.observed_scans == {"R": 1, "S": 1}
    assert stats.observed_mean_cardinalities() == {"R": 5.0, "S": 3.0}


def test_engine_stats_merge_is_associative():
    def build(pairs):
        stats = EngineStats()
        for name, cardinality in pairs:
            stats.record_scan(name, cardinality)
        return stats

    a = build([("R", 5), ("S", 3)])
    b = build([("R", 7)])
    c = build([("S", 1), ("T", 2)])

    left = a.merged_with(b).merged_with(c)
    right = a.merged_with(b.merged_with(c))
    assert left.observed_cardinalities == right.observed_cardinalities
    assert left.observed_scans == right.observed_scans
    assert left.observed_cardinalities == {"R": 12, "S": 4, "T": 2}
    assert left.observed_scans == {"R": 2, "S": 2, "T": 1}
    # means divide by scan count, so rescans do not inflate
    assert left.observed_mean_cardinalities()["R"] == pytest.approx(6.0)
