"""Tests for the nest/unnest extension operators (repro.core.nest) —
the conclusion's powerset-free paradigm."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.bag import Bag, EMPTY_BAG, Tup
from repro.core.errors import BagTypeError
from repro.core.eval import evaluate
from repro.core.expr import var
from repro.core.nest import Nest, Unnest, nest_bag, unnest_bag
from repro.core.ops import project
from repro.core.typecheck import infer_type
from repro.core.types import BagType, TupleType, U, flat_bag_type
from tests.conftest import flat_bags


class TestNestOperational:
    def test_basic_grouping(self):
        bag = Bag([Tup("ann", "book"), Tup("ann", "pen"),
                   Tup("bob", "pen")])
        nested = nest_bag(bag, (2,))
        assert nested.multiplicity(
            Tup("ann", Bag.of(Tup("book"), Tup("pen")))) == 1
        assert nested.multiplicity(Tup("bob", Bag.of(Tup("pen")))) == 1
        assert nested.cardinality == 2

    def test_group_keeps_inner_multiplicities(self):
        bag = Bag.from_counts({Tup("ann", "book"): 3})
        nested = nest_bag(bag, (2,))
        assert nested.multiplicity(
            Tup("ann", Bag.from_counts({Tup("book"): 3}))) == 1

    def test_groups_occur_once(self):
        # nest is set-like at the outer level even when the key tuples
        # had duplicates across different group members
        bag = Bag.from_counts({Tup("k", "x"): 2, Tup("k", "y"): 1})
        nested = nest_bag(bag, (2,))
        assert nested.is_set()

    def test_nest_all_attributes(self):
        bag = Bag.of(Tup("a"), Tup("b"))
        nested = nest_bag(bag, (1,))
        assert nested == Bag.of(Tup(Bag.of(Tup("a"), Tup("b"))))

    def test_nest_errors(self):
        with pytest.raises(BagTypeError):
            nest_bag(Bag.of("atom"), (1,))
        with pytest.raises(BagTypeError):
            nest_bag(Bag.of(Tup("a")), (2,))
        with pytest.raises(BagTypeError):
            nest_bag(Bag.of(Tup("a")), ())

    def test_nest_empty_bag(self):
        assert nest_bag(EMPTY_BAG, (1,)) == EMPTY_BAG


class TestUnnestOperational:
    def test_basic_flattening(self):
        nested = Bag.of(Tup("ann", Bag.of(Tup("book"), Tup("pen"))))
        flat = unnest_bag(nested, 2)
        assert flat == Bag.of(Tup("ann", "book"), Tup("ann", "pen"))

    def test_multiplicities_multiply(self):
        nested = Bag.from_counts(
            {Tup("k", Bag.from_counts({Tup("x"): 3})): 2})
        flat = unnest_bag(nested, 2)
        assert flat == Bag.from_counts({Tup("k", "x"): 6})

    def test_atom_valued_inner_bags(self):
        nested = Bag.of(Tup("k", Bag.of("x", "y")))
        flat = unnest_bag(nested, 2)
        assert flat == Bag.of(Tup("k", "x"), Tup("k", "y"))

    def test_empty_group_disappears(self):
        nested = Bag.of(Tup("k", EMPTY_BAG))
        assert unnest_bag(nested, 2) == EMPTY_BAG

    def test_unnest_errors(self):
        with pytest.raises(BagTypeError):
            unnest_bag(Bag.of(Tup("a", "b")), 1)  # not bag-valued
        with pytest.raises(BagTypeError):
            unnest_bag(Bag.of(Tup("a")), 5)


class TestRoundTrip:
    @given(flat_bags(arity=3, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_unnest_inverts_nest(self, bag):
        """unnest(nest_J(B)) = B up to the attribute reordering
        [rest..., J...]."""
        nested = nest_bag(bag, (2,)) if not bag.is_empty() else bag
        if bag.is_empty():
            return
        restored = unnest_bag(nested, 3)  # group sits last
        reordered = project(bag, 1, 3, 2)
        assert restored == reordered

    @given(flat_bags(arity=2, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_cardinality_preserved(self, bag):
        if bag.is_empty():
            return
        nested = nest_bag(bag, (1,))
        assert unnest_bag(nested, 2).cardinality == bag.cardinality


class TestExpressionNodes:
    def test_nest_node(self):
        bag = Bag([Tup("ann", "book"), Tup("ann", "pen")])
        result = evaluate(Nest(var("B"), 2), B=bag)
        assert result.cardinality == 1

    def test_unnest_node(self):
        nested = Bag.of(Tup("k", Bag.of(Tup("x"))))
        assert evaluate(Unnest(var("B"), 2),
                        B=nested) == Bag.of(Tup("k", "x"))

    def test_nest_type(self):
        inferred = infer_type(Nest(var("B"), 2), B=flat_bag_type(2))
        assert inferred == BagType(TupleType(
            (U, BagType(TupleType((U,))))))

    def test_unnest_type(self):
        nested_type = BagType(TupleType(
            (U, BagType(TupleType((U, U))))))
        inferred = infer_type(Unnest(var("B"), 2), B=nested_type)
        assert inferred == flat_bag_type(3)

    def test_nest_increases_nesting_by_one_only(self):
        """The conservativity point: nest reaches nesting input+1 —
        far below the powerset's reach."""
        from repro.core.fragments import max_bag_nesting
        assert max_bag_nesting(Nest(var("B"), 2),
                               B=flat_bag_type(2)) == 2

    def test_invalid_constructions(self):
        with pytest.raises(BagTypeError):
            Nest(var("B"))
        with pytest.raises(BagTypeError):
            Nest(var("B"), 1, 1)
        with pytest.raises(BagTypeError):
            Unnest(var("B"), 0)

    def test_type_errors(self):
        with pytest.raises(BagTypeError):
            infer_type(Nest(var("B"), 3), B=flat_bag_type(2))
        with pytest.raises(BagTypeError):
            infer_type(Unnest(var("B"), 1), B=flat_bag_type(2))

    def test_optimizer_passes_through(self):
        from repro.optimizer import optimize
        expr = Nest(var("B"), 2)
        assert optimize(expr) == expr


class TestNestVsPowersetGrouping:
    def test_group_membership_matches_powerset_filter(self):
        """The same grouping computed via nest and via a powerset
        detour agree — but nest's intermediate is linear while the
        powerset's is exponential (measured in bench E17)."""
        bag = Bag([Tup("k1", "a"), Tup("k1", "b"), Tup("k2", "a")])
        nested = nest_bag(bag, (2,))
        for entry in nested.distinct():
            key, group = entry.attribute(1), entry.attribute(2)
            members = {t.attribute(1) for t in group.distinct()}
            expected = {t.attribute(2) for t in bag.distinct()
                        if t.attribute(1) == key}
            assert members == expected
