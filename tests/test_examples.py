"""Smoke tests: every example script must run to completion.

The examples double as documentation; breaking one silently would rot
the README, so they are executed (with a budget) in-process.
"""

from __future__ import annotations

import pathlib
import runpy
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES,
                         ids=[path.stem for path in EXAMPLES])
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} printed nothing"


def test_shell_session_script():
    root = pathlib.Path(__file__).parent.parent
    session = root / "examples" / "shell_session.bag"
    result = subprocess.run(
        [sys.executable, "-m", "repro", str(session)],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    assert "orders" in result.stdout
    assert "BALG^" in result.stdout
