"""Integration tests: pipelines that cross module boundaries.

Each test wires several subsystems together the way a user would —
SQL through the optimizer, parsed text through fragment checking, the
arithmetic compiler through the rewriter, game structures through the
algebra — and checks end-to-end agreement.
"""

from __future__ import annotations

import pytest

from repro.arith import (
    NEq, NExists, NVar, Plus, compile_formula, input_bag,
)
from repro.core.bag import Bag, Tup
from repro.core.derived import bag_as_int, is_nonempty
from repro.core.eval import Evaluator, evaluate
from repro.core.fragments import fragment_report
from repro.core.nest import Nest
from repro.core.types import flat_bag_type, type_of
from repro.games import build_star_graphs, edge_bag
from repro.optimizer import Optimizer
from repro.relational import SetEvaluator, relational_evaluate
from repro.sql import Catalog, compile_sql, run_sql
from repro.surface import parse, to_text


@pytest.fixture
def shop():
    catalog = Catalog({
        "orders": ("customer", "item"),
        "vip": ("customer",),
    })
    database = {
        "orders": Bag([Tup("ann", "book"), Tup("ann", "book"),
                       Tup("bob", "pen"), Tup("cid", "ink")]),
        "vip": Bag([Tup("ann")]),
    }
    return catalog, database


class TestSqlThroughOptimizer:
    def test_optimized_sql_gives_same_rows(self, shop):
        catalog, database = shop
        text = ("SELECT orders.item FROM orders, vip "
                "WHERE orders.customer = vip.customer")
        compiled = compile_sql(text, catalog)
        schema = {name: type_of(bag) for name, bag in database.items()}
        optimized = Optimizer(schema=schema).optimize(compiled.expr)
        assert evaluate(optimized, database) == evaluate(
            compiled.expr, database)

    def test_sql_under_set_semantics_loses_duplicates(self, shop):
        catalog, database = shop
        compiled = compile_sql("SELECT customer FROM orders", catalog)
        bag_result = evaluate(compiled.expr, database)
        set_result = SetEvaluator().run(compiled.expr, database)
        assert bag_result.multiplicity(Tup("ann")) == 2
        assert set_result.multiplicity(Tup("ann")) == 1

    def test_sql_count_is_the_section3_aggregate(self, shop):
        catalog, database = shop
        compiled = compile_sql("SELECT COUNT(*) FROM orders", catalog)
        assert bag_as_int(evaluate(compiled.expr, database)) == 4


class TestSurfaceThroughEverything:
    def test_parse_fragment_optimize_evaluate(self, shop):
        _, database = shop
        text = ("pi[2](sigma[t: alpha1(t) = 'ann'](orders)) "
                "(+) pi[2](sigma[t: alpha1(t) = 'bob'](orders))")
        expr = parse(text)
        schema = {"orders": flat_bag_type(2)}
        report = fragment_report(expr, schema)
        assert report.in_balg1
        optimized = Optimizer(schema=schema).optimize(expr)
        assert evaluate(optimized, database) == evaluate(expr, database)
        # and the optimized form still round-trips through text
        reparsed = parse(to_text(optimized))
        assert evaluate(reparsed, database) == evaluate(expr, database)

    def test_nested_query_via_surface(self, shop):
        _, database = shop
        grouped = evaluate(parse("nest[2](orders)"), database)
        assert grouped.multiplicity(Tup(
            "ann", Bag.from_counts({Tup("book"): 2}))) == 1
        flat_again = evaluate(parse("unnest[2](nest[2](orders))"),
                              database)
        assert flat_again == database["orders"]


class TestArithThroughOptimizer:
    def test_compiled_formula_survives_rewriting(self):
        formula = NExists("x", NEq(Plus(NVar("x"), NVar("x")),
                                   NVar("n")))
        compiled = compile_formula(formula)
        optimizer = Optimizer()
        optimized = optimizer.optimize(compiled.expr)
        for n in range(5):
            bag = input_bag(n)
            assert (is_nonempty(evaluate(optimized, B=bag))
                    == is_nonempty(evaluate(compiled.expr, B=bag)))


class TestGamesThroughAlgebra:
    def test_star_graph_edge_bags_under_both_semantics(self):
        pair = build_star_graphs(4)
        bag = edge_bag(pair.unbalanced)
        # the edge bag is already a set, so bag and set semantics agree
        from repro.core.expr import var
        from repro.core.derived import in_degree_greater_expr
        query = in_degree_greater_expr(var("G"), pair.center)
        assert is_nonempty(evaluate(query, G=bag))
        # under set semantics the query STILL works here because the
        # star graph has no parallel edges — the separation needs the
        # in/out counting, which survives dedup on a set input
        assert is_nonempty(relational_evaluate(query, G=bag)) in (
            True, False)  # well-defined either way

    def test_nest_summarises_star_graph(self):
        pair = build_star_graphs(4)
        bag = edge_bag(pair.balanced)
        grouped = evaluate(Nest(parse("G"), 2), G=bag)
        # one group per distinct source; alpha sources all Out-edges
        sources = {entry.attribute(1) for entry in grouped.distinct()}
        assert pair.center in sources


class TestInstrumentationAcrossModules:
    def test_sql_queries_profile_flat(self, shop):
        catalog, database = shop
        compiled = compile_sql(
            "SELECT customer FROM orders UNION ALL "
            "SELECT customer FROM vip", catalog)
        evaluator = Evaluator()
        evaluator.run(compiled.expr, database)
        # a BALG^1 pipeline: no powersets executed, multiplicities tiny
        assert "Powerset" not in evaluator.stats.op_counts
        assert evaluator.stats.peak_multiplicity <= 4

    def test_budget_guards_sql_against_powerset_free_expressions(
            self, shop):
        catalog, database = shop
        compiled = compile_sql("SELECT COUNT(*) FROM orders", catalog)
        evaluator = Evaluator(powerset_budget=2)
        # the budget never trips: count uses no powerset
        assert bag_as_int(evaluator.run(compiled.expr, database)) == 4
