"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.core.bag import Bag, Tup

# ----------------------------------------------------------------------
# Hypothesis strategies for complex objects
# ----------------------------------------------------------------------

#: A small alphabet of atoms keeps collisions (and thus duplicates)
#: frequent, which is what bag semantics is about.
atoms = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def flat_tuples(draw, arity: int = 2):
    """Flat tuples of atoms with a fixed arity."""
    return Tup(*(draw(atoms) for _ in range(arity)))


@st.composite
def flat_bags(draw, arity: int = 2, max_size: int = 8):
    """Unnested bags of flat tuples (the BALG^1 inputs of Section 4)."""
    members = draw(st.lists(flat_tuples(arity=arity), max_size=max_size))
    return Bag(members)


@st.composite
def atom_bags(draw, max_size: int = 8):
    """Bags of bare atoms."""
    return Bag(draw(st.lists(atoms, max_size=max_size)))


@st.composite
def nested_bags(draw, max_outer: int = 5, max_inner: int = 4):
    """Bags of bags of atoms (one level of nesting, BALG^2 inputs)."""
    inner = st.lists(atoms, max_size=max_inner).map(Bag)
    return Bag(draw(st.lists(inner, max_size=max_outer)))


@st.composite
def small_multiplicity_bags(draw, max_distinct: int = 3,
                            max_count: int = 4):
    """Bags given directly as counts, to exercise high multiplicities."""
    n_distinct = draw(st.integers(0, max_distinct))
    counts = {}
    letters = ["a", "b", "c", "d", "e"][:n_distinct]
    for letter in letters:
        counts[Tup(letter)] = draw(st.integers(1, max_count))
    return Bag.from_counts(counts)


# ----------------------------------------------------------------------
# Plain fixtures
# ----------------------------------------------------------------------

@pytest.fixture
def sample_bag() -> Bag:
    """The running example ``[[ [a,b], [a,b], [b,a] ]]``."""
    return Bag.of(Tup("a", "b"), Tup("a", "b"), Tup("b", "a"))


@pytest.fixture
def single_constant_bag() -> Bag:
    """``B_n`` of Prop 4.1: n occurrences of the 1-tuple [a]."""
    return Bag.from_counts({Tup("a"): 5})
