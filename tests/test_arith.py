"""Tests for bounded arithmetic and the Lemma 5.7 translation
(repro.arith)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import (
    NAnd, NConst, NEq, NExists, NForall, NLe, NNot, NOr, NVar, Plus,
    Times, compile_formula, domain_bound, domain_expr, doubling_expr,
    eval_formula, eval_term, input_bag, int_bag, bag_int,
)
from repro.core.derived import is_nonempty
from repro.core.errors import BagTypeError
from repro.core.eval import evaluate
from repro.core.expr import var


class TestTermsAndFormulas:
    def test_eval_term(self):
        term = Plus(Times(NVar("x"), NConst(3)), NConst(1))
        assert eval_term(term, {"x": 4}) == 13

    def test_unbound_variable(self):
        with pytest.raises(BagTypeError):
            eval_term(NVar("x"), {})

    def test_negative_constant_rejected(self):
        with pytest.raises(BagTypeError):
            NConst(-1)

    def test_free_vars(self):
        formula = NExists("x", NEq(Plus(NVar("x"), NVar("y")),
                                   NVar("n")))
        assert formula.free_vars() == frozenset({"y", "n"})

    def test_bounded_quantification(self):
        # exists x: x = 5 — only true when the bound admits 5
        formula = NExists("x", NEq(NVar("x"), NConst(5)))
        assert not eval_formula(formula, 4, {})
        assert eval_formula(formula, 5, {})

    def test_forall(self):
        formula = NForall("x", NLe(NVar("x"), NConst(3)))
        assert eval_formula(formula, 3, {})
        assert not eval_formula(formula, 4, {})


class TestIntegerEncoding:
    @given(st.integers(0, 20))
    def test_roundtrip(self, value):
        assert bag_int(int_bag(value)) == value

    def test_negative_rejected(self):
        with pytest.raises(BagTypeError):
            int_bag(-2)

    def test_input_bag(self):
        assert input_bag(4).cardinality == 4


class TestDomains:
    def test_domain_bound_levels(self):
        assert domain_bound(3, 0) == 3
        assert domain_bound(3, 1) == 8
        assert domain_bound(2, 2) == 16

    def test_doubling_expr(self):
        from repro.arith.translate import _normalize
        result = evaluate(doubling_expr(_normalize(var("B"))),
                          B=input_bag(3))
        assert result.cardinality == 8

    def test_domain_contains_all_sizes(self):
        domain = evaluate(domain_expr("B", 0), B=input_bag(3))
        sizes = sorted(entry.attribute(1).cardinality
                       for entry in domain.distinct())
        assert sizes == [0, 1, 2, 3]

    def test_domain_level_one(self):
        domain = evaluate(domain_expr("B", 1), B=input_bag(2))
        sizes = sorted(entry.attribute(1).cardinality
                       for entry in domain.distinct())
        assert sizes == list(range(5))  # 0..2^2


#: Formula generators paired with their Python ground truth.
def _formula_zoo():
    x, y, n = NVar("x"), NVar("y"), NVar("n")
    return [
        NExists("x", NEq(Plus(x, x), n)),                   # n even
        NExists("x", NEq(Times(x, x), n)),                  # n square
        NForall("x", NLe(x, n)),                            # bound <= n
        NEq(Plus(n, n), Times(NConst(2), n)),               # tautology
        NNot(NEq(n, NConst(3))),
        NOr(NEq(n, NConst(1)),
            NExists("x", NEq(Plus(x, NConst(2)), n))),      # n>=2 or n=1
        NExists("x", NExists("y", NEq(Plus(x, y), n))),
        NExists("x", NAnd(NLe(NConst(1), x),
                          NEq(Times(x, NConst(2)), n))),
    ]


class TestLemma57Translation:
    """The compiled algebra expression agrees with the direct bounded
    evaluation on every formula and input size."""

    @pytest.mark.parametrize("index", range(len(_formula_zoo())))
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4])
    def test_agreement_level0(self, index, n):
        formula = _formula_zoo()[index]
        compiled = compile_formula(formula, input_var="n", bag_var="B")
        algebra = is_nonempty(evaluate(compiled.expr, B=input_bag(n)))
        direct = eval_formula(formula, domain_bound(n, 0), {"n": n})
        assert algebra == direct, (formula, n)

    def test_agreement_level1(self):
        # hyper(1): quantifiers reach 2^n — values beyond n become
        # representable.
        formula = NExists("x", NEq(NVar("x"), NConst(4)))
        compiled = compile_formula(formula, hyper_level=1)
        assert is_nonempty(evaluate(compiled.expr, B=input_bag(2)))
        compiled0 = compile_formula(formula, hyper_level=0)
        assert not is_nonempty(evaluate(compiled0.expr, B=input_bag(2)))

    def test_unquantified_variables_rejected(self):
        with pytest.raises(BagTypeError):
            compile_formula(NEq(NVar("x"), NVar("n")))

    def test_closed_formulas(self):
        true_sentence = NEq(Plus(NConst(1), NConst(1)), NConst(2))
        false_sentence = NEq(NConst(1), NConst(2))
        assert is_nonempty(evaluate(
            compile_formula(true_sentence).expr, B=input_bag(1)))
        assert not is_nonempty(evaluate(
            compile_formula(false_sentence).expr, B=input_bag(1)))

    def test_translation_is_balg2_plus_powerbag(self):
        """The compiled expressions stay within two levels of bag
        nesting (Lemma 5.7 lives in BALG^2 + Pb)."""
        from repro.core.fragments import max_bag_nesting
        from repro.core.types import flat_bag_type
        formula = NExists("x", NEq(Plus(NVar("x"), NVar("x")),
                                   NVar("n")))
        compiled = compile_formula(formula, hyper_level=1)
        nesting = max_bag_nesting(compiled.expr, B=flat_bag_type(1))
        assert nesting <= 2
