"""Tests for the resource-governor spine (repro.guard).

The acceptance scenario: a demonstrably diverging IFP program, a
powerset blow-up, and a deep-nesting query must all terminate within
their configured budgets, raise structured ``ReproError`` subclasses
carrying partial ``EvalStats``, and leave the process alive.
"""

from __future__ import annotations

import sys

import pytest

from repro.core.bag import Bag, Tup
from repro.core.errors import (
    BudgetExceeded, Cancelled, DeadlineExceeded, EvaluationError,
    GovernedError, IfpDivergenceError, RecursionDepthExceeded,
    ReproError, ResourceLimitError,
)
from repro.core.eval import EvalStats, Evaluator, evaluate
from repro.core.expr import (
    Bagging, Cartesian, Const, Powerset, Var,
)
from repro.guard import (
    CancellationToken, FaultPlan, FaultSequence, Limits,
    ResourceGovernor, RetryPolicy, RunOutcome, is_injected,
    run_with_retry,
)
from repro.machines.ifp import Ifp
from repro.workloads import uniform_family


class FakeClock:
    """A deterministic clock advancing a fixed amount per reading."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def tuple_family(k: int, m: int) -> Bag:
    """k distinct unary tuples, m occurrences each (Cartesian-ready)."""
    return Bag.from_counts({Tup(f"c{i}"): m for i in range(k)})


def big_product(depth: int = 4):
    """B x B x ... — encoding size grows geometrically with depth."""
    expr = Var("B")
    for _ in range(depth):
        expr = Cartesian(expr, Var("B"))
    return expr


class TestExceptionFamily:
    def test_hierarchy(self):
        assert issubclass(GovernedError, EvaluationError)
        assert issubclass(GovernedError, ReproError)
        assert issubclass(BudgetExceeded, GovernedError)
        assert issubclass(BudgetExceeded, ResourceLimitError)
        assert issubclass(DeadlineExceeded, GovernedError)
        assert issubclass(Cancelled, GovernedError)
        assert issubclass(RecursionDepthExceeded, GovernedError)
        assert issubclass(IfpDivergenceError, BudgetExceeded)

    def test_details_become_attributes(self):
        error = BudgetExceeded("boom", stats=EvalStats(),
                               budget="steps", limit=7)
        assert error.budget == "steps"
        assert error.limit == 7
        assert error.details == {"budget": "steps", "limit": 7}
        assert isinstance(error.stats, EvalStats)


class TestStepBudget:
    def test_step_budget_fires_with_partial_stats(self):
        evaluator = Evaluator(max_steps=5)
        with pytest.raises(BudgetExceeded) as info:
            evaluator.run(big_product(6), B=tuple_family(2, 1))
        error = info.value
        assert error.budget == "steps"
        assert error.limit == 5
        assert error.stats is evaluator.stats
        assert error.stats.nodes_evaluated <= 5

    def test_generous_budget_does_not_interfere(self):
        governed = Evaluator(max_steps=10_000).run(
            big_product(2), B=tuple_family(2, 1))
        plain = Evaluator().run(big_product(2), B=tuple_family(2, 1))
        assert governed == plain


class TestSizeBudget:
    def test_cartesian_blow_up_respects_size_budget(self):
        evaluator = Evaluator(max_size=500)
        with pytest.raises(BudgetExceeded) as info:
            evaluator.run(big_product(6), B=tuple_family(3, 2))
        error = info.value
        assert error.budget == "size"
        assert error.observed > 500
        # every *recorded* intermediate obeyed the budget
        assert error.stats.peak_encoding_size <= 500

    def test_within_budget_result_is_exact(self):
        result = Evaluator(max_size=100_000).run(
            big_product(2), B=tuple_family(2, 2))
        assert result == Evaluator().run(big_product(2),
                                         B=tuple_family(2, 2))


class TestPowersetBlowUp:
    def test_powerset_budget_is_structured_and_carries_stats(self):
        evaluator = Evaluator(powerset_budget=100)
        with pytest.raises(BudgetExceeded) as info:
            evaluator.run(Powerset(Var("B")), B=uniform_family(10, 2))
        error = info.value
        assert error.budget == "powerset"
        assert error.observed == 3 ** 10
        assert error.stats is evaluator.stats
        # the operand was evaluated before the budget check fired
        assert error.stats.nodes_evaluated >= 1

    def test_governor_supplies_powerset_budget(self):
        governor = ResourceGovernor(Limits(powerset_budget=100))
        with pytest.raises(BudgetExceeded):
            Evaluator(governor=governor).run(Powerset(Var("B")),
                                             B=uniform_family(10, 2))

    def test_budget_exceeded_still_a_resource_limit_error(self):
        with pytest.raises(ResourceLimitError):
            evaluate(Powerset(Var("B")), B=uniform_family(10, 2),
                     powerset_budget=100)


class TestDeadline:
    def test_deadline_expires_deterministically(self):
        evaluator = Evaluator(timeout=5.0, clock=FakeClock(step=1.0))
        with pytest.raises(DeadlineExceeded) as info:
            evaluator.run(big_product(6), B=tuple_family(2, 2))
        assert info.value.timeout == 5.0
        assert info.value.stats is evaluator.stats

    def test_no_deadline_within_time(self):
        clock = FakeClock(step=0.001)
        result = Evaluator(timeout=60.0, clock=clock).run(
            Var("B") + Var("B"), B=uniform_family(2, 1))
        assert result.cardinality == 4

    def test_remaining_time(self):
        clock = FakeClock(step=1.0)
        governor = ResourceGovernor(timeout=10.0, clock=clock)
        governor.start()
        assert governor.remaining_time() < 10.0
        assert governor.elapsed() > 0.0


class TestCancellation:
    def test_pre_cancelled_token(self):
        token = CancellationToken()
        token.cancel("user hit ^C")
        evaluator = Evaluator(cancellation=token)
        with pytest.raises(Cancelled) as info:
            evaluator.run(Var("B"), B=uniform_family(2, 1))
        assert "user hit ^C" in str(info.value)
        assert info.value.stats is evaluator.stats

    def test_token_cancel_mid_run_via_faults(self):
        with pytest.raises(Cancelled):
            Evaluator(faults=FaultPlan(at_step=3, kind="cancel")).run(
                big_product(4), B=tuple_family(2, 1))


class TestRecursionDepth:
    def test_proactive_depth_limit(self):
        expr = Var("B")
        for _ in range(100):
            expr = Bagging(expr)
        evaluator = Evaluator(max_depth=50)
        with pytest.raises(RecursionDepthExceeded) as info:
            evaluator.run(expr, B=uniform_family(1, 1))
        assert info.value.limit == 50
        assert info.value.stats is evaluator.stats

    def test_deep_expression_recursion_error_converted(self):
        expr = Var("B")
        for _ in range(sys.getrecursionlimit() * 2):
            expr = Bagging(expr)
        evaluator = Evaluator()
        with pytest.raises(RecursionDepthExceeded) as info:
            evaluator.run(expr, B=uniform_family(1, 1))
        assert info.value.stats is evaluator.stats

    def test_deep_nested_bag_value_converted(self):
        # regression: a deeply nested *value* (not expression) used to
        # escape as a bare RecursionError from the instrumentation
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(limit * 40)
            deep = Bag.of("a")
            for _ in range(limit * 2):
                deep = Bag.of(deep)
        finally:
            sys.setrecursionlimit(limit)
        evaluator = Evaluator()
        with pytest.raises(RecursionDepthExceeded) as info:
            evaluator.run(Const(deep))
        assert isinstance(info.value, ReproError)
        assert info.value.stats is evaluator.stats
        # the process is alive and the evaluator still works
        assert evaluator.run(Const(Bag.of("a"))) == Bag.of("a")


class TestGovernedIfp:
    def diverging_ifp(self, max_iterations: int = 10_000) -> Ifp:
        return Ifp("X", Var("X") + Var("X"),
                   Const(Bag.of(Tup("a"))),
                   max_iterations=max_iterations)

    def test_divergence_is_structured(self):
        evaluator = Evaluator()
        with pytest.raises(IfpDivergenceError) as info:
            evaluator.run(self.diverging_ifp(max_iterations=20))
        error = info.value
        assert error.iterations == 20
        assert error.last_cardinality == 2 ** 20
        assert error.last_distinct == 1
        assert error.stats is evaluator.stats
        assert error.stats.nodes_evaluated > 20

    def test_governor_caps_node_iterations(self):
        governor = ResourceGovernor(Limits(max_iterations=7))
        with pytest.raises(IfpDivergenceError) as info:
            Evaluator(governor=governor).run(self.diverging_ifp())
        assert info.value.iterations == 7

    def test_node_cap_tighter_than_governor(self):
        governor = ResourceGovernor(Limits(max_iterations=500))
        with pytest.raises(IfpDivergenceError) as info:
            Evaluator(governor=governor).run(
                self.diverging_ifp(max_iterations=3))
        assert info.value.iterations == 3

    def test_cancellation_stops_iteration(self):
        token = CancellationToken()
        governor = ResourceGovernor(token=token)
        evaluator = Evaluator(governor=governor)
        # cancel after the seed evaluates: the fault-free way is a
        # token flipped before the run even starts the loop
        token.cancel("shutdown")
        with pytest.raises(Cancelled):
            evaluator.run(self.diverging_ifp())

    def test_converging_ifp_unaffected(self):
        from repro.machines.ifp import transitive_closure_expr
        graph = Bag.of(Tup(1, 2), Tup(2, 3))
        closure = Evaluator(max_steps=100_000).run(
            transitive_closure_expr(Const(graph)))
        assert Tup(1, 3) in closure


class TestFaultInjection:
    def test_budget_fault_at_nth_operator(self):
        evaluator = Evaluator(faults=FaultPlan(at_step=4, kind="budget"))
        with pytest.raises(BudgetExceeded) as info:
            evaluator.run(big_product(4), B=tuple_family(2, 1))
        assert is_injected(info.value)
        assert info.value.step == 4
        assert info.value.stats is evaluator.stats

    def test_deadline_fault(self):
        with pytest.raises(DeadlineExceeded) as info:
            Evaluator(faults=FaultPlan(at_step=1, kind="deadline")).run(
                Var("B"), B=uniform_family(1, 1))
        assert is_injected(info.value)

    def test_cancel_fault(self):
        with pytest.raises(Cancelled):
            Evaluator(faults=FaultPlan(at_step=2, kind="cancel")).run(
                big_product(2), B=tuple_family(1, 1))

    def test_fault_is_deterministic(self):
        plan = FaultPlan(at_step=3, kind="budget")
        for _ in range(2):
            evaluator = Evaluator(faults=plan)
            with pytest.raises(BudgetExceeded):
                evaluator.run(big_product(4), B=tuple_family(2, 1))
            assert evaluator.governor.steps == 3

    def test_transient_fault_clears(self):
        plan = FaultPlan(at_step=1, kind="deadline", max_firings=2)
        governor = ResourceGovernor(faults=plan)
        for _ in range(2):
            governor.start()
            with pytest.raises(DeadlineExceeded):
                governor.tick()
        governor.start()
        governor.tick()  # third run: the fault has gone quiet

    def test_fault_sequence(self):
        faults = FaultSequence([
            FaultPlan(at_step=5, kind="budget"),
            FaultPlan(at_step=2, kind="cancel"),
        ])
        with pytest.raises(Cancelled):
            Evaluator(faults=faults).run(big_product(4),
                                         B=uniform_family(2, 1))

    def test_bad_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(at_step=1, kind="meteor")
        with pytest.raises(ValueError):
            FaultPlan(at_step=0)


class TestRetryRunner:
    def test_ok_first_try(self):
        outcome = run_with_retry(lambda attempt: 42)
        assert outcome.status == "ok"
        assert outcome.ok
        assert outcome.value == 42
        assert outcome.attempts == 1

    def test_transient_then_success(self):
        plan = FaultPlan(at_step=1, kind="deadline", max_firings=2)

        def attempt(number: int):
            governor = ResourceGovernor(faults=plan)
            governor.tick()
            return "done"

        sleeps = []
        outcome = run_with_retry(
            attempt, RetryPolicy(attempts=3, backoff=0.5),
            sleep=sleeps.append)
        assert outcome.status == "retried"
        assert outcome.ok
        assert outcome.value == "done"
        assert outcome.attempts == 3
        assert sleeps == [0.5, 1.0]  # exponential backoff

    def test_budget_not_retried(self):
        calls = []

        def attempt(number: int):
            calls.append(number)
            raise BudgetExceeded("no", budget="steps", limit=1)

        outcome = run_with_retry(attempt, RetryPolicy(attempts=5))
        assert outcome.status == "budget-exceeded"
        assert not outcome.ok
        assert calls == [1]
        assert outcome.error.budget == "steps"

    def test_exhausted_retries(self):
        def attempt(number: int):
            raise DeadlineExceeded("slow", timeout=1.0)

        outcome = run_with_retry(attempt, RetryPolicy(attempts=3))
        assert outcome.status == "deadline-exceeded"
        assert outcome.attempts == 3

    def test_cancelled_classified(self):
        def attempt(number: int):
            raise Cancelled("stop")

        outcome = run_with_retry(attempt)
        assert outcome.status == "cancelled"

    def test_non_governed_errors_propagate(self):
        def attempt(number: int):
            raise KeyError("bug")

        with pytest.raises(KeyError):
            run_with_retry(attempt)

    def test_outcome_stats_passthrough(self):
        stats = EvalStats()

        def attempt(number: int):
            raise BudgetExceeded("no", stats=stats, budget="size",
                                 limit=1)

        assert run_with_retry(attempt).stats is stats


class TestGovernedGameSearch:
    def test_step_budget_bounds_the_search(self):
        from repro.games.pebble import duplicator_wins
        from repro.games.star_graphs import build_star_graphs
        from repro.core.types import U

        pair = build_star_graphs(4)
        governor = ResourceGovernor(Limits(max_steps=10))
        with pytest.raises(BudgetExceeded):
            duplicator_wins(pair.balanced, pair.unbalanced, [U], 3,
                            governor=governor)

    def test_generous_budget_same_verdict(self):
        from repro.games.pebble import duplicator_wins
        from repro.games.star_graphs import build_star_graphs
        from repro.core.types import U

        pair = build_star_graphs(4)
        plain = duplicator_wins(pair.balanced, pair.unbalanced, [U], 1)
        governed = duplicator_wins(
            pair.balanced, pair.unbalanced, [U], 1,
            governor=ResourceGovernor(Limits(max_steps=1 << 20)))
        assert governed.duplicator_wins == plain.duplicator_wins


class TestGovernedSql:
    CATALOG = None

    def setup_method(self):
        from repro.sql import Catalog
        self.catalog = Catalog({"orders": ("customer", "item")})
        from repro.workloads import order_book
        self.database = {"orders": order_book(30, seed=1)}

    def test_governed_pipeline_matches_ungoverned(self):
        from repro.sql import run_sql
        query = ("SELECT o1.customer FROM orders o1, orders o2 "
                 "WHERE o1.customer = o2.customer")
        plain = run_sql(query, self.catalog, self.database)
        governor = ResourceGovernor(Limits(max_steps=1 << 20))
        governed = run_sql(query, self.catalog, self.database,
                           governor=governor)
        assert governed == plain
        assert governor.steps > 0

    def test_step_budget_stops_hostile_join(self):
        from repro.sql import run_sql
        query = ("SELECT o1.customer FROM orders o1, orders o2, orders o3")
        governor = ResourceGovernor(Limits(max_steps=5))
        with pytest.raises(BudgetExceeded):
            run_sql(query, self.catalog, self.database,
                    governor=governor)

    def test_size_budget_stops_hostile_join(self):
        from repro.sql import run_sql
        query = ("SELECT o1.customer FROM orders o1, orders o2, orders o3")
        governor = ResourceGovernor(Limits(max_size=1000))
        with pytest.raises(BudgetExceeded) as info:
            run_sql(query, self.catalog, self.database,
                    governor=governor)
        assert info.value.budget == "size"


class TestGovernedWorkloads:
    def test_random_relation_governed(self):
        from repro.workloads import random_relation
        governor = ResourceGovernor(Limits(max_steps=10))
        with pytest.raises(BudgetExceeded):
            random_relation(10, arity=3, governor=governor)

    def test_random_multigraph_governed(self):
        from repro.workloads import random_multigraph
        governor = ResourceGovernor(Limits(max_steps=5))
        with pytest.raises(BudgetExceeded):
            random_multigraph(4, 100, governor=governor)

    def test_order_book_governed_same_output(self):
        from repro.workloads import order_book
        plain = order_book(20, seed=3)
        governed = order_book(
            20, seed=3,
            governor=ResourceGovernor(Limits(max_steps=1000)))
        assert governed == plain


class TestGovernorSharing:
    def test_one_governor_spans_layers(self):
        """A single step budget covers evaluator + IFP together."""
        governor = ResourceGovernor(Limits(max_steps=50))
        evaluator = Evaluator(governor=governor)
        with pytest.raises(BudgetExceeded):
            evaluator.run(Ifp("X", Var("X") + Var("X"),
                              Const(Bag.of(Tup("a")))))
        assert governor.steps == 51

    def test_start_resets_counters(self):
        governor = ResourceGovernor(Limits(max_steps=3))
        for _ in range(3):
            governor.tick()
        governor.start()
        governor.tick()  # fresh budget
        assert governor.steps == 1

    def test_limits_round_trip(self):
        limits = Limits(max_steps=1, max_size=2, powerset_budget=3,
                        timeout=4.0, max_depth=5, max_iterations=6)
        assert ResourceGovernor(limits).limits() == limits
        assert limits.any_set()
        assert not Limits().any_set()


class TestAcceptanceScenario:
    """The ISSUE acceptance criteria, end to end in one process."""

    def test_three_disasters_one_process(self):
        survivors = []

        # 1. diverging IFP
        try:
            evaluate(Ifp("X", Var("X") + Var("X"),
                         Const(Bag.of(Tup("a"))), max_iterations=30))
        except IfpDivergenceError as error:
            survivors.append(("ifp", error.stats))

        # 2. powerset blow-up
        try:
            evaluate(Powerset(Var("B")), B=uniform_family(14, 2),
                     limits=Limits(powerset_budget=1 << 10))
        except BudgetExceeded as error:
            survivors.append(("powerset", error.stats))

        # 3. deep-nesting query
        expr = Var("B")
        for _ in range(200):
            expr = Bagging(expr)
        try:
            evaluate(expr, B=uniform_family(1, 1),
                     limits=Limits(max_depth=64))
        except RecursionDepthExceeded as error:
            survivors.append(("deep", error.stats))

        assert [name for name, _ in survivors] == [
            "ifp", "powerset", "deep"]
        for _, stats in survivors:
            assert isinstance(stats, EvalStats)
        # the process is alive and well
        assert evaluate(Var("B") + Var("B"),
                        B=Bag.of("a")).cardinality == 2


class TestFaultsInsideHarness:
    """The differential harness threads injected faults into every
    backend's governor; the retry runner must compose with that —
    transient faults clear across attempts, persistent ones classify."""

    def _case(self):
        from repro.testkit import generate_case
        return generate_case(0, 0)

    def test_harness_outcomes_carry_injection_marker(self):
        from repro.testkit import Harness
        harness = Harness(
            backends=("oracle", "engine"), metamorphic=False,
            faults=FaultSequence([FaultPlan(at_step=2, kind="cancel")]))
        report = harness.run_case(self._case())
        assert report.ok  # governed asymmetry is not a mismatch
        for outcome in report.outcomes.values():
            assert outcome.status == "governed"
            assert is_injected(outcome.error)

    def test_transient_fault_recovers_under_retry(self):
        from repro.testkit import Harness
        # fires on the first two attempts, then goes quiet
        plan = FaultPlan(at_step=2, kind="deadline", max_firings=2)
        harness = Harness(backends=("oracle",), metamorphic=False,
                          faults=plan)
        case = self._case()

        def attempt(number: int):
            outcome = harness.run_case(case).outcomes["oracle"]
            if outcome.status == "governed":
                raise outcome.error
            assert outcome.status == "ok"
            return outcome.value

        result = run_with_retry(attempt, RetryPolicy(attempts=3))
        assert result.status == "retried"
        assert result.attempts == 3
        assert isinstance(result.value, Bag)

    def test_persistent_fault_classifies_not_raises(self):
        from repro.testkit import Harness
        harness = Harness(
            backends=("oracle",), metamorphic=False,
            faults=FaultPlan(at_step=1, kind="budget"))
        case = self._case()

        def attempt(number: int):
            outcome = harness.run_case(case).outcomes["oracle"]
            if outcome.status == "governed":
                raise outcome.error
            return outcome.value

        result = run_with_retry(attempt, RetryPolicy(attempts=3))
        assert result.status == "budget-exceeded"
        assert result.attempts == 1  # budgets are not transient
        assert is_injected(result.error)
