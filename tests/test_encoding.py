"""Tests for the standard-encoding codec and the recognition problem
(repro.core.encoding — the concrete Section 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.bag import Bag, EMPTY_BAG, Tup
from repro.core.database import encoding_size
from repro.core.derived import card_greater_expr, project_expr
from repro.core.encoding import (
    decode_standard, encode_instance, encoded_size,
    recognition_instance, recognition_word, standard_encoding,
)
from repro.core.errors import BagTypeError, ParseError
from repro.core.expr import var
from tests.conftest import flat_bags, nested_bags


class TestEncoding:
    def test_atoms(self):
        assert standard_encoding("a") == "(sa)"
        assert standard_encoding(42) == "(i42)"

    def test_tuple(self):
        assert standard_encoding(Tup("a", 1)) == "[(sa),(i1)]"

    def test_bag_duplicates_written_out(self):
        bag = Bag.from_counts({"a": 3})
        assert standard_encoding(bag) == "{(sa),(sa),(sa)}"

    def test_canonical_order_makes_encoding_canonical(self):
        one = Bag(["b", "a", "a"])
        two = Bag(["a", "b", "a"])
        assert standard_encoding(one) == standard_encoding(two)

    def test_nested(self):
        nested = Bag([Bag(["x"])])
        assert standard_encoding(nested) == "{{(sx)}}"

    def test_empty_bag(self):
        assert standard_encoding(EMPTY_BAG) == "{}"

    def test_reserved_characters_rejected(self):
        with pytest.raises(BagTypeError):
            standard_encoding("a,b")

    def test_boolean_rejected(self):
        with pytest.raises(BagTypeError):
            standard_encoding(True)


class TestDecoding:
    @pytest.mark.parametrize("value", [
        "a", 7, Tup("a", "b"), Bag(["a", "a"]),
        Bag([Tup("x", 1), Tup("x", 1), Tup("y", 2)]),
        Bag([Bag(["a"]), Bag()]), EMPTY_BAG, Tup(),
    ])
    def test_round_trip(self, value):
        assert decode_standard(standard_encoding(value)) == value

    def test_type_preserved(self):
        assert decode_standard("(i5)") == 5
        assert decode_standard("(s5)") == "5"
        assert decode_standard("(i5)") != "5"

    def test_malformed_inputs(self):
        for bad in ["", "[", "{(sa)", "(sa", "(x1)", "(sa)(sb)",
                    "[(sa),]"]:
            with pytest.raises(ParseError):
                decode_standard(bad)

    @given(flat_bags())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_flat(self, bag):
        assert decode_standard(standard_encoding(bag)) == bag

    @given(nested_bags())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_nested(self, bag):
        assert decode_standard(standard_encoding(bag)) == bag


class TestSizeAgreement:
    @given(flat_bags())
    @settings(max_examples=60, deadline=None)
    def test_encoded_size_linear_in_abstract_size(self, bag):
        """The concrete word length and the abstract encoding_size
        agree up to a constant factor: both write duplicates out."""
        abstract = encoding_size(bag)
        concrete = encoded_size(bag)
        assert abstract <= concrete <= 8 * abstract

    def test_duplicates_cost_linearly(self):
        thin = Bag.from_counts({"a": 1})
        thick = Bag.from_counts({"a": 10})
        assert encoded_size(thick) > 9 * (encoded_size(thin) - 2)


class TestRecognitionProblem:
    def test_word_shape(self):
        database = {"R": Bag.of(Tup("a"))}
        word = recognition_word(database, Tup("a"), 2)
        assert word.startswith("{[(sa)],[(sa)]}**")
        assert "R#" in word

    def test_instance_encoding_sorted_by_name(self):
        database = {"Z": EMPTY_BAG, "A": EMPTY_BAG}
        assert encode_instance(database) == "A#{}*Z#{}"

    def test_k_belongs_decision(self):
        database = {"B": Bag.from_counts({Tup("a", "b"): 2})}
        query = project_expr(var("B"), 1)
        assert recognition_instance(query, database, Tup("a"), 2)
        assert not recognition_instance(query, database, Tup("a"), 1)
        assert recognition_instance(query, database, Tup("z"), 0)

    def test_boolean_query_recognition(self):
        database = {"R": Bag.of(Tup(1), Tup(2)), "S": Bag.of(Tup(9))}
        query = card_greater_expr(var("R"), var("S"))
        # each [r] occurs |R| - |S| = 2 - 1 = 1 time in the difference
        assert recognition_instance(query, database, Tup(1), 1)
        assert not recognition_instance(query, database, Tup(1), 2)
