"""Differential fuzzing: independent components of the library are run
against each other on randomly generated well-typed expressions.

These tests are the strongest correctness evidence in the suite: the
evaluator, the symbolic counting analysis, the optimizer, the
parser/printer, the set-semantics baseline, and the type checker were
written independently, so agreement on thousands of random programs is
meaningful.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.complexity.polynomials import analyze, single_constant_input
from repro.core.bag import Bag, Tup
from repro.core.errors import ReproError
from repro.core.eval import Evaluator, evaluate
from repro.core.expr import Dedup, Subtraction
from repro.core.typecheck import infer_type
from repro.core.types import flat_bag_type
from repro.guard import Limits, ResourceGovernor
from repro.optimizer import Optimizer, optimize
from repro.relational import supports_agree
from repro.surface import parse, to_text
from repro.testkit import Harness
from tests.strategies import balg1_exprs, input_bags
from tests.strategies import testkit_cases as _cases

SCHEMA = {"B": flat_bag_type(2)}
FUZZ_SETTINGS = dict(max_examples=120, deadline=None)
_HARNESS = Harness()


class TestEvaluatorVsAnalysis:
    """Prop 4.1's claim, fuzzed: on the single-constant inputs B_n the
    symbolic polynomials predict the evaluator exactly."""

    @given(balg1_exprs(arity=1, input_arity=1, include_order=True))
    @settings(**FUZZ_SETTINGS)
    def test_polynomials_predict_multiplicities(self, expr):
        analysis = analyze(expr)
        for offset in (1, 2):
            n = analysis.threshold + offset
            result = evaluate(expr, B=single_constant_input(n))
            support = set(result.distinct()) | analysis.support()
            for candidate in support:
                assert result.multiplicity(candidate) == \
                    analysis.polynomial_for(candidate)(n)

    @given(balg1_exprs(arity=1, input_arity=1, include_dedup=False,
                       allow_input_atom=False))
    @settings(**FUZZ_SETTINGS)
    def test_claim_invariant_on_dedup_free_fragment(self, expr):
        assert analyze(expr).verify_claim_invariant()


class TestOptimizerSoundness:
    @given(balg1_exprs(include_order=True), input_bags())
    @settings(**FUZZ_SETTINGS)
    def test_rewrites_preserve_semantics(self, expr, bag):
        optimized = Optimizer(schema=SCHEMA).optimize(expr)
        assert evaluate(optimized, B=bag) == evaluate(expr, B=bag)

    @given(balg1_exprs())
    @settings(**FUZZ_SETTINGS)
    def test_optimizer_reaches_fixpoint(self, expr):
        optimizer = Optimizer(schema=SCHEMA)
        once = optimizer.optimize(expr)
        assert optimizer.optimize(once) == once


class TestPrinterRoundTrip:
    @given(balg1_exprs(include_order=True), input_bags())
    @settings(**FUZZ_SETTINGS)
    def test_parse_print_semantics(self, expr, bag):
        reparsed = parse(to_text(expr))
        assert evaluate(reparsed, B=bag) == evaluate(expr, B=bag)


class TestTypeSoundness:
    @given(balg1_exprs(include_order=True), input_bags())
    @settings(**FUZZ_SETTINGS)
    def test_results_inhabit_inferred_types(self, expr, bag):
        inferred = infer_type(expr, SCHEMA)
        result = evaluate(expr, B=bag)
        assert inferred.accepts(result)

    @given(balg1_exprs())
    @settings(**FUZZ_SETTINGS)
    def test_generated_expressions_stay_in_balg1(self, expr):
        from repro.core.fragments import in_balg
        assert in_balg(expr, 1, SCHEMA)


class TestProposition42Fuzzed:
    @given(balg1_exprs(include_subtraction=False), input_bags())
    @settings(**FUZZ_SETTINGS)
    def test_supports_agree_without_subtraction(self, expr, bag):
        assert supports_agree(expr, {"B": bag})


class TestGenericityFuzzed:
    """Section 2: queries are generic — renaming atoms that do not
    occur in the expression commutes with evaluation."""

    @given(balg1_exprs(allow_input_atom=False), input_bags())
    @settings(**FUZZ_SETTINGS)
    def test_fresh_atom_renaming_commutes(self, expr, bag):
        from repro.core.database import apply_renaming
        # rename 'a' (never used inside these expressions) to a fresh
        # atom; constants 'b','c' may appear in expr so stay put
        mapping = {"a": "fresh-a"}
        direct = apply_renaming(evaluate(expr, B=bag), mapping)
        renamed = evaluate(expr, B=apply_renaming(bag, mapping))
        assert direct == renamed


class TestGovernedEvaluationFuzzed:
    """The governor's contract, fuzzed: under arbitrary (tight or
    generous) limits, governed evaluation either succeeds with the
    exact ungoverned result or fails *inside* the ``ReproError``
    hierarchy — never with a bare RecursionError/MemoryError — and the
    recorded intermediates never exceed the declared size budget."""

    @given(balg1_exprs(include_order=True), input_bags(),
           st.integers(1, 2_000), st.integers(1, 20_000))
    @settings(**FUZZ_SETTINGS)
    def test_failures_stay_structured(self, expr, bag, max_steps,
                                      max_size):
        evaluator = Evaluator(governor=ResourceGovernor(
            Limits(max_steps=max_steps, max_size=max_size,
                   powerset_budget=1 << 16, max_depth=200)))
        try:
            result = evaluator.run(expr, B=bag)
        except ReproError as error:
            assert getattr(error, "stats", None) is not None
        else:
            assert result == evaluate(expr, B=bag)
        # size-budget invariant: nothing larger than max_size was ever
        # recorded, success or failure
        assert evaluator.stats.peak_encoding_size <= max_size

    @given(balg1_exprs(include_order=True), input_bags())
    @settings(**FUZZ_SETTINGS)
    def test_generous_limits_are_transparent(self, expr, bag):
        governed = Evaluator(governor=ResourceGovernor(
            Limits(max_steps=1 << 30, max_size=1 << 30,
                   timeout=3600.0))).run(expr, B=bag)
        assert governed == evaluate(expr, B=bag)


class TestNestedDifferentialFuzzed:
    """The testkit's nested multi-relation cases, driven from
    Hypothesis: the full differential matrix (oracle, cold and warm
    engine, optimizer, printer round trip, SQL where expressible) plus
    the metamorphic law catalogue must agree on every generated case."""

    @given(_cases())
    @settings(max_examples=40, deadline=None)
    def test_differential_matrix_agrees(self, case):
        report = _HARNESS.run_case(case)
        details = "; ".join(m.describe() for m in report.mismatches)
        assert report.ok, details

    @given(_cases(fragment="balg3", size=10))
    @settings(max_examples=25, deadline=None)
    def test_nested_fragments_stay_in_bounds(self, case):
        from repro.core.fragments import max_bag_nesting
        assert max_bag_nesting(case.expr, case.schema) <= 3
        assert infer_type(case.expr, case.schema).accepts(
            Evaluator().run(case.expr, case.database))
