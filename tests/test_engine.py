"""Tests for the physical execution engine (:mod:`repro.engine`).

Three layers of evidence:

* **differential fuzzing** — the engine is bag-equal to the tree
  walker (the semantics oracle) on random well-typed BALG^1
  expressions, and governed engine runs fail only with structured
  :class:`~repro.core.errors.ReproError` subclasses;
* **unit tests** — kernels, lowering decisions (hash-join fusion,
  intersection reordering, multiplicity scaling, shared-subexpression
  materialisation), and the LRU plan cache;
* **estimator regression** — the optimizer's cardinality estimates
  dominate the engine's *measured* per-node row counts on the
  bench-E01 workload family (uniform bags, delta-of-powerset).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.bag import Bag, Tup
from repro.core.errors import (
    BudgetExceeded, ReproError, UnboundVariableError,
)
from repro.core.eval import evaluate as oracle_evaluate
from repro.core.expr import (
    AdditiveUnion, Attribute, BagDestroy, Cartesian, Const, Dedup,
    Intersection, Lam, Map, Powerset, Select, Subtraction, Var, var,
)
from repro.core.nest import Nest, Unnest
from repro.engine import (
    EngineStats, PlanCache, canonical_key, default_cache, evaluate,
    explain_physical, lower, plan_for,
)
from repro.engine import kernels
from repro.engine.physical import (
    HashJoin, MultiplicityScale, NestedLoopProduct, OracleEval,
    ScanBag, SharedScan,
)
from repro.guard import Limits
from repro.optimizer.cardinality import estimate, stats_of
from repro.workloads import random_relation, uniform_family
from tests.strategies import balg1_exprs, input_bags

FUZZ_SETTINGS = dict(max_examples=120, deadline=None)


def _eval_both(expr, bag):
    """(oracle result, engine result) with caching disabled."""
    reference = oracle_evaluate(expr, B=bag)
    result = evaluate(expr, B=bag, cache=None)
    return reference, result


class TestDifferentialFuzz:
    """The engine agrees with the oracle on random programs."""

    @given(balg1_exprs(include_order=True), input_bags())
    @settings(**FUZZ_SETTINGS)
    def test_engine_matches_oracle(self, expr, bag):
        reference, result = _eval_both(expr, bag)
        assert result == reference

    @given(balg1_exprs(include_order=True), input_bags())
    @settings(**FUZZ_SETTINGS)
    def test_engine_matches_oracle_through_shared_cache(self, expr,
                                                        bag):
        """The process-wide plan cache must never change results."""
        reference = oracle_evaluate(expr, B=bag)
        assert evaluate(expr, B=bag) == reference
        assert evaluate(expr, B=bag) == reference  # cached plan

    @given(balg1_exprs(max_depth=3), input_bags(max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_governed_runs_raise_only_repro_errors(self, expr, bag):
        limits = Limits(max_steps=200, max_size=400,
                        powerset_budget=64)
        try:
            governed = evaluate(expr, B=bag, cache=None, limits=limits)
        except ReproError:
            return
        assert governed == oracle_evaluate(expr, B=bag)


class TestEngineSemanticsUnits:
    """Hand-picked expressions outside the fuzz grammar."""

    def test_powerset_and_destroy(self):
        bag = uniform_family(2, 2)
        wrapped = Bag([Tup(element) for element in bag.elements()])
        for expr in (Powerset(var("B")), BagDestroy(Powerset(var("B")))):
            reference = oracle_evaluate(expr, B=wrapped)
            assert evaluate(expr, B=wrapped, cache=None) == reference

    def test_nest_unnest_roundtrip(self):
        relation = Bag.from_counts(
            {Tup("a", 1): 2, Tup("a", 2): 1, Tup("b", 1): 3})
        expr = Unnest(Nest(var("R"), 2), 2)
        reference = oracle_evaluate(expr, R=relation)
        assert evaluate(expr, R=relation, cache=None) == reference

    def test_extension_nodes_fall_back_to_oracle(self):
        from repro.machines import Ifp
        graph = Bag([Tup("a", "b"), Tup("b", "c")])
        expr = Ifp("X", Var("X") | Var("G"), var("G"))
        stats = EngineStats()
        reference = oracle_evaluate(expr, G=graph)
        assert evaluate(expr, G=graph, cache=None,
                        stats=stats) == reference
        assert stats.oracle_fallbacks >= 1

    def test_non_bag_root_result(self):
        expr = Const(42)
        assert evaluate(expr, cache=None) == oracle_evaluate(expr)

    def test_unbound_variable(self):
        with pytest.raises(UnboundVariableError):
            evaluate(var("ghost"), cache=None)

    def test_unknown_engine_name(self):
        with pytest.raises(ValueError):
            evaluate(var("B"), B=Bag.of("a"), engine="quantum")

    def test_tree_engine_dispatch(self):
        bag = Bag.of("a", "a", "b")
        assert evaluate(Dedup(var("B")), B=bag,
                        engine="tree") == Bag.of("a", "b")

    def test_powerset_budget_enforced(self):
        bag = Bag([Tup(str(i)) for i in range(30)])
        wrapped = Bag([Tup(element) for element in bag.elements()])
        with pytest.raises(BudgetExceeded):
            evaluate(Powerset(var("B")), B=wrapped, cache=None,
                     powerset_budget=100)

    def test_size_budget_attaches_stats(self):
        bag = Bag([Tup(str(i), str(i)) for i in range(50)])
        with pytest.raises(BudgetExceeded) as excinfo:
            evaluate(var("B") * var("B"), B=bag, cache=None,
                     limits=Limits(max_size=100))
        assert excinfo.value.stats is not None


class TestKernels:
    def test_monus(self):
        left = {"a": 5, "b": 2}
        right = {"a": 3, "b": 2, "c": 9}
        assert dict(kernels.k_monus(left, right)) == {"a": 2}

    def test_min_intersect(self):
        small = {"a": 2, "z": 1}
        large = {"a": 5, "b": 2}
        assert dict(kernels.k_min_intersect(small, large)) == {"a": 2}

    def test_max_union(self):
        left = {"a": 2}
        right = {"a": 5, "b": 1}
        assert dict(kernels.k_max_union(left, right)) == \
            {"a": 5, "b": 1}

    def test_dedup_streams_first_occurrence(self):
        rows = [("a", 2), ("b", 1), ("a", 9)]
        assert list(kernels.k_dedup(rows)) == [("a", 1), ("b", 1)]

    def test_scale(self):
        assert list(kernels.k_scale([("a", 2)], 3)) == [("a", 6)]

    def test_hash_join_counts_multiply(self):
        left = [(Tup("a", 1), 2)]
        right = [(Tup(1, "x"), 3)]
        build = kernels.collect(right)
        joined = dict(kernels.k_hash_join(
            left, build, probe_key=lambda t: (t[1],),
            build_key=lambda t: (t[0],), probe_is_left=True))
        assert joined == {Tup("a", 1, 1, "x"): 6}


class TestLoweringDecisions:
    def test_join_fusion_on_large_product(self):
        # domain of 12 atoms -> ~70 tuples/side, well over the
        # hash-join threshold but cheap for the oracle to cross-check
        left = random_relation(12, arity=2, seed=1)
        right = random_relation(12, arity=2, seed=2)
        expr = Select(Lam("t", Attribute(Var("t"), 2)),
                      Lam("t", Attribute(Var("t"), 3)),
                      Cartesian(var("L"), var("R")))
        plan = lower(expr, {"L": stats_of(left), "R": stats_of(right)},
                     arities={"L": 2, "R": 2})
        assert isinstance(plan.root, HashJoin)
        bindings = {"L": left, "R": right}
        assert evaluate(expr, bindings, cache=None) == \
            oracle_evaluate(expr, bindings)

    def test_tiny_product_stays_nested_loop(self):
        left = Bag([Tup("a", "b")])
        right = Bag([Tup("b", "c")])
        expr = Select(Lam("t", Attribute(Var("t"), 2)),
                      Lam("t", Attribute(Var("t"), 3)),
                      Cartesian(var("L"), var("R")))
        plan = lower(expr, {"L": stats_of(left), "R": stats_of(right)},
                     arities={"L": 2, "R": 2})
        assert not isinstance(plan.root, HashJoin)

    def test_intersection_probes_smaller_side(self):
        small = Bag([Tup("a")])
        large = Bag([Tup(str(i)) for i in range(50)])
        plan = lower(Intersection(var("Big"), var("Small")),
                     {"Big": stats_of(large), "Small": stats_of(small)})
        # the estimated-smaller operand becomes the left/probe child
        assert isinstance(plan.root.left, ScanBag)
        assert plan.root.left.name == "Small"

    def test_self_union_becomes_multiplicity_scale(self):
        plan = lower(AdditiveUnion(var("B"), var("B")), None)
        assert isinstance(plan.root, MultiplicityScale)
        assert plan.root.factor == 2

    def test_repeated_subexpression_shared(self):
        heavy = Dedup(var("B") * var("B"))
        expr = Subtraction(heavy, Dedup(heavy))
        plan = lower(expr, None)
        shared = [node for node in _walk_plan(plan.root)
                  if isinstance(node, SharedScan)]
        assert len(shared) >= 2
        bag = random_relation(6, arity=1, seed=3)
        stats = EngineStats()
        assert evaluate(expr, B=bag, cache=None, stats=stats) == \
            oracle_evaluate(expr, B=bag)
        assert stats.shared_materialized >= 1
        assert stats.shared_reused >= 1

    def test_lambda_bodies_not_shared(self):
        """A repeated constant inside two lambdas must not become a
        SharedScan (lambda bodies are per-element programs)."""
        body = Attribute(Var("t"), 1)
        expr = Map(Lam("t", Tupling_safe(body)),
                   Map(Lam("t", Tupling_safe(body)), var("B")))
        plan = lower(expr, None)
        assert not [node for node in _walk_plan(plan.root)
                    if isinstance(node, SharedScan)]


def Tupling_safe(part):
    from repro.core.expr import Tupling
    return Tupling(part)


def _walk_plan(node):
    yield node
    for name in ("child", "left", "right", "inner"):
        sub = getattr(node, name, None)
        if sub is not None and hasattr(sub, "rows"):
            yield from _walk_plan(sub)


class TestPlanCache:
    def test_hit_skips_lowering(self):
        cache = PlanCache(capacity=4)
        bag = Bag.of("a", "b")
        stats = EngineStats()
        expr = Dedup(var("B"))
        evaluate(expr, B=bag, cache=cache, stats=stats)
        evaluate(expr, B=bag, cache=cache, stats=stats)
        assert stats.lowerings == 1
        assert stats.cache_misses == 1
        assert stats.cache_hits == 1

    def test_commutative_operands_share_plans(self):
        key_ab = PlanCache.key_for(var("A") + var("B"))
        key_ba = PlanCache.key_for(var("B") + var("A"))
        assert key_ab == key_ba
        # subtraction is NOT commutative
        assert PlanCache.key_for(var("A") - var("B")) != \
            PlanCache.key_for(var("B") - var("A"))

    def test_canonical_key_recurses(self):
        nested_ab = Dedup(Intersection(var("A"), var("B")))
        nested_ba = Dedup(Intersection(var("B"), var("A")))
        assert canonical_key(nested_ab) == canonical_key(nested_ba)

    def test_arity_signature_misses_on_schema_change(self):
        expr = var("R")
        assert PlanCache.key_for(expr, {"R": 2}) != \
            PlanCache.key_for(expr, {"R": 3})

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        plans = {}
        for name in ("A", "B", "C"):
            key = PlanCache.key_for(var(name))
            plans[name] = lower(var(name), None)
            cache.put(key, plans[name])
        assert PlanCache.key_for(var("A")) not in cache  # evicted
        assert PlanCache.key_for(var("C")) in cache
        assert cache.stats.evictions == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_default_cache_is_process_wide(self):
        assert default_cache() is default_cache()


class TestExplainPhysical:
    def test_reports_kernels_and_actuals(self):
        bag = Bag.of("a", "a", "b")
        text = explain_physical(Dedup(var("B")) - var("B"), B=bag)
        assert "kernel=monus" in text
        assert "kernel=dedup" in text
        assert "actual rows" in text

    def test_without_execution_no_actuals(self):
        text = explain_physical(Dedup(var("B")), execute=False,
                                B=Bag.of("a"))
        assert "actual rows" not in text


class TestEstimatorVsEngineMeasurements:
    """Satellite regression: cardinality estimates vs the engine's
    measured per-node row counts on bench-E01 workloads."""

    def _measured_root_rows(self, expr, bindings):
        stats = EngineStats()
        plan = plan_for(expr, bindings, cache=None, stats=stats)
        result = evaluate(expr, bindings, cache=None)
        return result.cardinality

    def test_delta_of_powerset_estimate_exact_on_uniform_family(self):
        for k, m in [(2, 2), (3, 2), (2, 3)]:
            bag = uniform_family(k, m)
            wrapped = Bag([Tup(element) for element in bag.elements()])
            expr = BagDestroy(Powerset(var("B")))
            estimated = estimate(expr, {"B": stats_of(wrapped)})
            measured = self._measured_root_rows(expr, {"B": wrapped})
            assert estimated.cardinality == measured

    def test_scale_chain_estimate_exact(self):
        bag = uniform_family(4, 3)
        expr = AdditiveUnion(var("B"), var("B"))
        for _ in range(3):
            expr = AdditiveUnion(expr, expr)
        estimated = estimate(expr, {"B": stats_of(bag)})
        measured = self._measured_root_rows(expr, {"B": bag})
        assert estimated.cardinality == measured
        assert estimated.distinct == bag.distinct_count

    def test_estimates_dominate_measured_rows(self):
        """Worst-case selectivity estimates bound what the engine
        actually emits, node by node."""
        left = random_relation(12, arity=2, seed=7)
        right = random_relation(9, arity=2, seed=8)
        bindings = {"L": left, "R": right}
        statistics = {name: stats_of(bag)
                      for name, bag in bindings.items()}
        battery = [
            var("L") + var("R"),
            Dedup(var("L") + var("L")),
            var("L") - var("R"),
            var("L") & var("R"),
            var("L") * var("R"),
            Dedup(var("L") * var("R")),
        ]
        for expr in battery:
            estimated = estimate(expr, statistics, selectivity=1.0)
            plan = lower(expr, statistics)
            ctx_result = evaluate(expr, bindings, cache=None)
            assert ctx_result.cardinality <= \
                estimated.cardinality + 1e-9, expr
            assert ctx_result.distinct_count <= \
                estimated.distinct + 1e-9, expr

    def test_plan_nodes_record_actuals(self):
        bag = Bag.of("a", "a", "b")
        stats = EngineStats()
        plan = plan_for(Dedup(var("B")), {"B": bag}, cache=None,
                        stats=stats)
        from repro.core.eval import Evaluator
        from repro.engine.physical import ExecContext
        plan.execute(ExecContext({"B": bag},
                                 Evaluator(track_stats=False),
                                 stats=stats))
        assert plan.root.actual_rows == 2
        assert stats.kernel_counts.get("dedup") == 1
        assert stats.rows_emitted > 0


class TestPlanCacheKeys:
    """Canonical-key collision safety and LRU recency: structurally
    close expressions must key apart, and re-access must refresh
    eviction order (the plan-cache hotspots the differential harness
    leans on through its ``engine-warm`` backend)."""

    def test_nest_indices_key_apart(self):
        assert PlanCache.key_for(Nest(var("R"), 1)) != \
            PlanCache.key_for(Nest(var("R"), 2))
        assert PlanCache.key_for(Nest(var("R"), 1, 2)) != \
            PlanCache.key_for(Nest(var("R"), 2, 1))

    def test_unnest_index_keys_apart(self):
        assert PlanCache.key_for(Unnest(var("R"), 1)) != \
            PlanCache.key_for(Unnest(var("R"), 2))

    def test_select_op_keys_apart(self):
        def select(op):
            return Select(Lam("t", Attribute(Var("t"), 1)),
                          Lam("t", Attribute(Var("t"), 2)),
                          var("R"), op=op)
        keys = {PlanCache.key_for(select(op))
                for op in ("eq", "ne", "le", "lt")}
        assert len(keys) == 4

    def test_lambda_param_and_body_key(self):
        same = Map(Lam("t", Attribute(Var("t"), 1)), var("R"))
        other = Map(Lam("t", Attribute(Var("t"), 2)), var("R"))
        assert PlanCache.key_for(same) != PlanCache.key_for(other)

    def test_const_value_keys_apart(self):
        assert PlanCache.key_for(Const(Bag.of("a"))) != \
            PlanCache.key_for(Const(Bag.of("b")))

    def test_commutative_key_shares_but_executes_right(self):
        """A n B and B n A share one plan; running both orders against
        the same cache must still produce the right (identical) bag."""
        cache = PlanCache(capacity=8)
        A = Bag.of("a", "a", "b")
        B = Bag.of("a", "b", "b")
        first = evaluate(Intersection(var("A"), var("B")),
                         A=A, B=B, cache=cache)
        second = evaluate(Intersection(var("B"), var("A")),
                          A=A, B=B, cache=cache)
        assert first == second == Bag.of("a", "b")
        assert cache.stats.hits == 1

    def test_reaccess_refreshes_lru_order(self):
        cache = PlanCache(capacity=2)
        key_a = PlanCache.key_for(var("A"))
        key_b = PlanCache.key_for(var("B"))
        key_c = PlanCache.key_for(var("C"))
        cache.put(key_a, lower(var("A"), None))
        cache.put(key_b, lower(var("B"), None))
        assert cache.get(key_a) is not None  # A becomes most recent
        cache.put(key_c, lower(var("C"), None))
        assert key_a in cache
        assert key_b not in cache  # B was least recent, so B evicted
        assert cache.stats.evictions == 1

    def test_put_existing_key_refreshes_without_evicting(self):
        cache = PlanCache(capacity=2)
        key_a = PlanCache.key_for(var("A"))
        key_b = PlanCache.key_for(var("B"))
        cache.put(key_a, lower(var("A"), None))
        cache.put(key_b, lower(var("B"), None))
        cache.put(key_a, lower(var("A"), None))  # refresh, not grow
        assert len(cache) == 2
        assert cache.stats.evictions == 0
        cache.put(PlanCache.key_for(var("C")), lower(var("C"), None))
        assert key_b not in cache  # B was the stale entry

    def test_warm_cache_shared_across_databases(self):
        """Plans hold no data: one cached plan must serve two
        different databases of the same schema without leaking."""
        cache = PlanCache(capacity=4)
        expr = Subtraction(AdditiveUnion(var("R"), var("R")), var("R"))
        one = Bag.of(Tup("a", "b"), Tup("a", "b"))
        two = Bag.of(Tup("x", "y"))
        assert evaluate(expr, R=one, cache=cache) == one
        assert evaluate(expr, R=two, cache=cache) == two
        assert cache.stats.hits >= 1


class TestAdaptiveTickInterval:
    """The governor tick interval must shrink when single inter-tick
    gaps consume a large fraction of the deadline (satellite of the
    morsel-driven executor: bounds deadline overshoot to the work done
    between two consecutive ticks)."""

    @staticmethod
    def _context(timeout):
        from repro.core.eval import Evaluator
        from repro.engine.physical import ExecContext
        from repro.guard import Limits, ResourceGovernor

        clock = {"now": 0.0}
        governor = ResourceGovernor(Limits(timeout=timeout),
                                    clock=lambda: clock["now"])
        governor.start()
        evaluator = Evaluator(governor=governor, track_stats=False)
        return ExecContext({}, evaluator), clock

    def test_interval_halves_on_slow_gaps(self):
        ctx, clock = self._context(timeout=100.0)
        assert ctx.tick_interval == 128
        ctx.tick()  # first tick only records a timestamp
        assert ctx.tick_interval == 128
        for expected in (64, 32, 16, 8, 4, 2, 1):
            clock["now"] += 11.0  # gap > 10% of the 100s deadline
            ctx.tick()
            assert ctx.tick_interval == expected
        clock["now"] += 11.0
        ctx.tick()
        assert ctx.tick_interval == 1  # floor: never reaches zero

    def test_fast_gaps_keep_interval(self):
        ctx, clock = self._context(timeout=100.0)
        for _ in range(10):
            clock["now"] += 9.0  # gap < 10% of the deadline
            ctx.tick()
        assert ctx.tick_interval == 128

    def test_ungoverned_context_never_adapts(self):
        from repro.core.eval import Evaluator
        from repro.engine.physical import ExecContext

        ctx = ExecContext({}, Evaluator(track_stats=False))
        for _ in range(5):
            ctx.tick()
        assert ctx.tick_interval == 128

    def test_timeout_free_governor_never_adapts(self):
        from repro.core.eval import Evaluator
        from repro.engine.physical import ExecContext
        from repro.guard import Limits, ResourceGovernor

        governor = ResourceGovernor(Limits(max_steps=10**6))
        governor.start()
        ctx = ExecContext({}, Evaluator(governor=governor,
                                        track_stats=False))
        for _ in range(5):
            ctx.tick()
        assert ctx.tick_interval == 128

    def test_overshoot_bounded_after_adaptation(self):
        """Once adapted to interval 1, a deadline breach is noticed on
        the very next row rather than up to 127 rows later."""
        from repro.core.errors import DeadlineExceeded
        from repro.engine import kernels

        ctx, clock = self._context(timeout=100.0)
        ctx.tick()
        for _ in range(7):
            clock["now"] += 11.0
            ctx.tick()
        assert ctx.tick_interval == 1

        consumed = {"rows": 0}

        def rows():
            for i in range(10_000):
                consumed["rows"] += 1
                clock["now"] += 2.0  # deadline (t=100) passes mid-stream
                yield (Tup(i), 1)

        with pytest.raises(DeadlineExceeded):
            kernels.collect(rows(), tick=ctx.tick,
                            every=ctx.tick_interval,
                            get_every=lambda: ctx.tick_interval)
        # t was ~77 entering the stream; the deadline passes ~12 rows
        # in and must be seen within one row of interval-1 ticking.
        assert consumed["rows"] <= 14
