"""Tests for the rewrite rules and the optimizer engine
(repro.optimizer).  Every rule must preserve bag semantics — checked on
random inputs — and the engine must reach a fixpoint."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.bag import Bag, EMPTY_BAG, Tup
from repro.core.derived import select_attr_eq_const
from repro.core.eval import evaluate
from repro.core.expr import (
    AdditiveUnion, Attribute, Cartesian, Const, Dedup, Lam, Map,
    MaxUnion, Powerset, Select, Subtraction, Tupling, Var, var,
)
from repro.core.types import flat_bag_type
from repro.optimizer import (
    Optimizer, cancel_attribute_of_tupling, collapse_dedup,
    drop_neutral_elements, estimated_cost, fold_constants, fuse_maps,
    idempotent_extremes, optimize, push_selection_into_union,
    self_subtraction, substitute,
)
from tests.conftest import atom_bags, flat_bags


class TestSubstitute:
    def test_variable(self):
        assert substitute(var("X"), "X", var("Y")) == var("Y")
        assert substitute(var("Z"), "X", var("Y")) == var("Z")

    def test_under_binders_respects_shadowing(self):
        body = Map(Lam("x", Var("x")), Var("x"))
        # substituting for "x" must rewrite the free operand occurrence
        # but not the bound body occurrence
        replaced = substitute(body, "x", var("B"))
        assert replaced == Map(Lam("x", Var("x")), var("B"))

    def test_nested_structures(self):
        expr = Tupling(Attribute(Var("x"), 1), Const("k"))
        replaced = substitute(expr, "x", Var("y"))
        assert replaced == Tupling(Attribute(Var("y"), 1), Const("k"))


class TestIndividualRules:
    def test_fold_constants(self):
        expr = AdditiveUnion(Const(Bag.of("a")), Const(Bag.of("a")))
        folded = fold_constants(expr)
        assert folded == Const(Bag.from_counts({"a": 2}))

    def test_fold_ignores_variables(self):
        assert fold_constants(var("A") + Const(Bag.of("a"))) is None

    def test_drop_neutral(self):
        assert drop_neutral_elements(var("B") + Const(EMPTY_BAG)) == \
            var("B")
        assert drop_neutral_elements(Const(EMPTY_BAG) - var("B")) == \
            Const(EMPTY_BAG)
        assert drop_neutral_elements(var("B") & Const(EMPTY_BAG)) == \
            Const(EMPTY_BAG)

    def test_idempotent_extremes(self):
        assert idempotent_extremes(var("B") | var("B")) == var("B")
        assert idempotent_extremes(var("B") & var("B")) == var("B")
        assert idempotent_extremes(var("A") | var("B")) is None

    def test_self_subtraction(self):
        assert self_subtraction(var("B") - var("B")) == Const(EMPTY_BAG)

    def test_collapse_dedup(self):
        assert collapse_dedup(Dedup(Dedup(var("B")))) == Dedup(var("B"))
        assert collapse_dedup(Dedup(Powerset(var("B")))) == \
            Powerset(var("B"))

    def test_cancel_attribute_of_tupling(self):
        expr = Attribute(Tupling(Const("a"), Const("b")), 2)
        assert cancel_attribute_of_tupling(expr) == Const("b")

    def test_fuse_maps_structure(self):
        inner = Lam("x", Tupling(Attribute(Var("x"), 2),
                                 Attribute(Var("x"), 1)))
        outer = Lam("y", Attribute(Var("y"), 1))
        fused = fuse_maps(Map(outer, Map(inner, var("B"))))
        assert isinstance(fused, Map)
        assert fused.operand == var("B")

    def test_push_selection_into_union(self):
        query = select_attr_eq_const(var("A") + var("B"), 1, "a")
        pushed = push_selection_into_union(query)
        assert isinstance(pushed, AdditiveUnion)
        assert isinstance(pushed.left, Select)


class TestRuleSoundness:
    """Each rewrite preserves semantics on random inputs."""

    @given(atom_bags())
    def test_neutral_elements_sound(self, bag):
        expr = var("B") + Const(EMPTY_BAG)
        assert evaluate(optimize(expr), B=bag) == evaluate(expr, B=bag)

    @given(flat_bags(arity=2))
    def test_fusion_sound(self, bag):
        inner = Lam("x", Tupling(Attribute(Var("x"), 2),
                                 Attribute(Var("x"), 1)))
        outer = Lam("y", Tupling(Attribute(Var("y"), 1),
                                 Const("k")))
        expr = Map(outer, Map(inner, var("B")))
        assert evaluate(optimize(expr), B=bag) == evaluate(expr, B=bag)

    @given(flat_bags(arity=2), flat_bags(arity=2))
    def test_selection_union_pushdown_sound(self, left, right):
        expr = select_attr_eq_const(var("A") + var("B"), 1, "a")
        optimized = optimize(expr)
        env = {"A": left, "B": right}
        assert evaluate(optimized, env) == evaluate(expr, env)

    @given(flat_bags(arity=2), flat_bags(arity=1))
    def test_product_pushdown_sound(self, left, right):
        schema = {"A": flat_bag_type(2), "B": flat_bag_type(1)}
        optimizer = Optimizer(schema=schema)
        for index, const in [(1, "a"), (2, "b"), (3, "a")]:
            expr = select_attr_eq_const(var("A") * var("B"), index,
                                        const)
            optimized = optimizer.optimize(expr)
            env = {"A": left, "B": right}
            assert evaluate(optimized, env) == evaluate(expr, env)

    @given(atom_bags())
    def test_idempotence_sound(self, bag):
        expr = var("B") | var("B")
        assert evaluate(optimize(expr), B=bag) == evaluate(expr, B=bag)


class TestEngine:
    def test_reaches_fixpoint(self):
        expr = Dedup(Dedup(Dedup(var("B") + Const(EMPTY_BAG))))
        optimized = optimize(expr)
        assert optimized == Dedup(var("B"))
        # optimizing again changes nothing
        assert optimize(optimized) == optimized

    def test_product_pushdown_needs_schema(self):
        query = select_attr_eq_const(var("A") * var("B"), 1, "a")
        assert optimize(query) == query  # schema-free: no pushdown
        schema = {"A": flat_bag_type(2), "B": flat_bag_type(1)}
        pushed = optimize(query, schema=schema)
        assert isinstance(pushed, Cartesian)

    def test_pushdown_reduces_intermediate_size(self):
        """The point of the exercise: the selection runs before the
        product, so the peak intermediate bag is smaller."""
        from repro.core.eval import Evaluator
        schema = {"A": flat_bag_type(2), "B": flat_bag_type(1)}
        A = Bag([Tup(str(i), "a" if i == 0 else "z")
                 for i in range(20)])
        B = Bag([Tup(str(i)) for i in range(20)])
        query = select_attr_eq_const(var("A") * var("B"), 2, "a")
        naive, clever = Evaluator(), Evaluator()
        naive.run(query, A=A, B=B)
        clever.run(optimize(query, schema=schema), A=A, B=B)
        assert (clever.stats.peak_encoding_size
                < naive.stats.peak_encoding_size)

    def test_rewrites_counted(self):
        optimizer = Optimizer()
        optimizer.optimize(Dedup(Dedup(var("B"))))
        assert optimizer.rewrites_applied >= 1

    def test_estimated_cost_weights_powerset(self):
        assert estimated_cost(Powerset(var("B"))) > estimated_cost(
            Dedup(var("B")))

    def test_extension_nodes_pass_through(self):
        from repro.machines import Ifp
        expr = Ifp("X", Var("X"), var("G"))
        assert optimize(expr) == expr


class TestSelectionThroughMap:
    @given(flat_bags(arity=2))
    def test_sound_on_random_inputs(self, bag):
        from repro.optimizer import push_selection_through_map
        mapped = Map(Lam("m", Tupling(Attribute(Var("m"), 2))),
                     var("B"))
        query = Select(Lam("s", Attribute(Var("s"), 1)),
                       Lam("s", Const("a")), mapped)
        pushed = push_selection_through_map(query)
        assert pushed is not None
        assert isinstance(pushed, Map)
        assert evaluate(pushed, B=bag) == evaluate(query, B=bag)

    def test_capture_guard(self):
        """A selection lambda freely mentioning the MAP parameter's
        name must not be rewritten (it would be captured)."""
        from repro.optimizer import push_selection_through_map
        mapped = Map(Lam("m", Tupling(Attribute(Var("m"), 1))),
                     var("B"))
        risky = Select(Lam("s", Var("m")),        # free "m"!
                       Lam("s", Var("m")), mapped)
        assert push_selection_through_map(risky) is None

    @given(flat_bags(arity=2))
    def test_engine_applies_it(self, bag):
        mapped = Map(Lam("m", Tupling(Attribute(Var("m"), 2),
                                      Const("k"))), var("B"))
        query = Select(Lam("s", Attribute(Var("s"), 2)),
                       Lam("s", Const("k")), mapped)
        optimized = optimize(query)
        assert isinstance(optimized, Map)
        assert evaluate(optimized, B=bag) == evaluate(query, B=bag)
