"""Replay the persisted regression corpus as tier-1 tests.

Every ``tests/corpus/*.json`` document is a minimized repro of a
once-observed mismatch (or a hand-seeded sentinel for a fixed bug).
Each replays through the full differential matrix; a regression in any
backend turns the corresponding case red here, under plain pytest,
with no fuzzing involved.
"""

from __future__ import annotations

import os

import pytest

from repro.testkit import Harness, load_corpus

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

_LOADED = load_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert _LOADED, f"no corpus cases found under {CORPUS_DIR}"


@pytest.fixture(scope="module")
def harness():
    return Harness()


@pytest.fixture(scope="module")
def parallel_harness():
    """The ``--backends engine-parallel`` replay: oracle vs the
    morsel-driven executor only, with exchanges forced on every
    compilable segment (threshold 0 inside the backend)."""
    return Harness(backends=("oracle", "engine-parallel"),
                   metamorphic=False)


@pytest.mark.parametrize(
    "path,case,meta", _LOADED,
    ids=[os.path.splitext(os.path.basename(path))[0]
         for path, _, _ in _LOADED])
def test_corpus_case_replays_green(path, case, meta, harness):
    report = harness.run_case(case)
    details = "; ".join(m.describe() for m in report.mismatches)
    assert report.ok, (
        f"corpus case {os.path.basename(path)} regressed "
        f"(original finding: {meta.get('kind')}/{meta.get('backend')}"
        f"): {details}")


@pytest.mark.parametrize(
    "path,case,meta", _LOADED,
    ids=["parallel-" + os.path.splitext(os.path.basename(path))[0]
         for path, _, _ in _LOADED])
def test_corpus_case_replays_green_parallel(path, case, meta,
                                            parallel_harness):
    report = parallel_harness.run_case(case)
    details = "; ".join(m.describe() for m in report.mismatches)
    assert report.ok, (
        f"corpus case {os.path.basename(path)} regressed under the "
        f"parallel engine: {details}")
