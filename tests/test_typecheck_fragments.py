"""Tests for static type inference and fragment checking — the
machinery behind the BALG^k hierarchy of Sections 4-6."""

from __future__ import annotations

import pytest

from repro.core.bag import Bag, Tup
from repro.core.derived import (
    card_greater_expr, derived_dedup, derived_subtraction, parity_even_expr,
)
from repro.core.errors import (
    BagTypeError, FragmentViolationError, UnboundVariableError,
)
from repro.core.expr import (
    Attribute, BagDestroy, Bagging, Cartesian, Const, Dedup, Lam, Map,
    Powerbag, Powerset, Select, Tupling, Var, var,
)
from repro.core.fragments import (
    assert_in_balg, fragment_report, in_balg, max_bag_nesting,
    operators_used, power_nesting, uses_only,
)
from repro.core.typecheck import annotate_types, infer_type
from repro.core.types import (
    BagType, TupleType, U, flat_bag_type, flat_tuple_type,
)


class TestInference:
    def test_var_type_from_schema(self):
        assert infer_type(var("B"), B=flat_bag_type(2)) == flat_bag_type(2)

    def test_unknown_variable(self):
        with pytest.raises(UnboundVariableError):
            infer_type(var("B"))

    def test_const_type(self):
        assert infer_type(Const(Bag.of(Tup("a")))) == flat_bag_type(1)
        assert infer_type(Const("a")) == U

    def test_union_unifies(self):
        expr = var("A") + var("B")
        assert infer_type(expr, A=flat_bag_type(1),
                          B=flat_bag_type(1)) == flat_bag_type(1)

    def test_union_type_mismatch(self):
        with pytest.raises(BagTypeError):
            infer_type(var("A") + var("B"),
                       A=flat_bag_type(1), B=flat_bag_type(2))

    def test_union_requires_bags(self):
        with pytest.raises(BagTypeError):
            infer_type(Const("a") + Const("b"))

    def test_cartesian_type(self):
        expr = var("A") * var("B")
        inferred = infer_type(expr, A=flat_bag_type(2), B=flat_bag_type(1))
        assert inferred == flat_bag_type(3)

    def test_cartesian_requires_tuples(self):
        with pytest.raises(BagTypeError):
            infer_type(var("A") * var("B"),
                       A=BagType(U), B=flat_bag_type(1))

    def test_powerset_type(self):
        inferred = infer_type(Powerset(var("B")), B=flat_bag_type(1))
        assert inferred == BagType(flat_bag_type(1))

    def test_bag_destroy_type(self):
        inferred = infer_type(BagDestroy(var("N")),
                              N=BagType(flat_bag_type(1)))
        assert inferred == flat_bag_type(1)

    def test_bag_destroy_requires_nested(self):
        with pytest.raises(BagTypeError):
            infer_type(BagDestroy(var("B")), B=flat_bag_type(1))

    def test_attribute_type(self):
        schema = BagType(TupleType((U, BagType(U))))
        expr = Map(Lam("t", Attribute(Var("t"), 2)), var("B"))
        assert infer_type(expr, B=schema) == BagType(BagType(U))

    def test_attribute_out_of_range(self):
        expr = Map(Lam("t", Attribute(Var("t"), 5)), var("B"))
        with pytest.raises(BagTypeError):
            infer_type(expr, B=flat_bag_type(2))

    def test_map_type(self):
        expr = Map(Lam("t", Bagging(Var("t"))), var("B"))
        assert infer_type(expr, B=flat_bag_type(1)) == BagType(
            BagType(flat_tuple_type(1)))

    def test_select_checks_comparand_types(self):
        bad = Select(Lam("t", Attribute(Var("t"), 1)),
                     Lam("t", Var("t")), var("B"))
        with pytest.raises(BagTypeError):
            infer_type(bad, B=flat_bag_type(1))

    def test_tupling_type(self):
        expr = Tupling(Const("a"), var("B"))
        assert infer_type(expr, B=flat_bag_type(1)) == TupleType(
            (U, flat_bag_type(1)))

    def test_annotations_cover_all_nodes(self):
        expr = Dedup(var("B") + var("B"))
        log = annotate_types(expr, B=flat_bag_type(1))
        assert len(log) == 4  # two Vars, the union, the dedup


class TestFragments:
    def test_balg1_query(self):
        query = card_greater_expr(var("R"), var("S"))
        assert in_balg(query, 1, R=flat_bag_type(1), S=flat_bag_type(1))

    def test_powerset_leaves_balg1(self):
        query = Powerset(var("B"))
        assert not in_balg(query, 1, B=flat_bag_type(1))
        assert in_balg(query, 2, B=flat_bag_type(1))

    def test_derived_subtraction_needs_nesting_two(self):
        """Section 3: subtraction is defined in BALG_{-minus} only *by
        increasing the bag nesting* — the derived form is BALG^2, not
        BALG^1."""
        query = derived_subtraction(var("A"), var("B"))
        nesting = max_bag_nesting(query, A=flat_bag_type(1),
                                  B=flat_bag_type(1))
        assert nesting == 2

    def test_derived_dedup_needs_nesting_two(self):
        query = derived_dedup(var("B"), flat_tuple_type(2))
        assert max_bag_nesting(query, B=flat_bag_type(2)) == 2

    def test_parity_query_is_balg1(self):
        assert in_balg(parity_even_expr(var("R")), 1, R=flat_bag_type(1))

    def test_input_nesting_counts(self):
        # Even the identity query on a nested input is not BALG^1.
        assert not in_balg(var("N"), 1, N=BagType(BagType(U)))

    def test_power_nesting_sequential(self):
        # Two powersets on one path nest; on sibling paths they do not.
        nested = Powerset(Powerset(var("B")))
        assert power_nesting(nested) == 2
        siblings = Powerset(var("B")) + Powerset(var("B"))
        assert power_nesting(siblings) == 1

    def test_power_nesting_counts_powerbag(self):
        assert power_nesting(Powerbag(Powerset(var("B")))) == 2

    def test_assert_in_balg_passes(self):
        assert_in_balg(var("B"), 1, B=flat_bag_type(1))

    def test_assert_in_balg_nesting_violation(self):
        with pytest.raises(FragmentViolationError):
            assert_in_balg(Powerset(var("B")), 1, B=flat_bag_type(1))

    def test_assert_in_balg_forbidden_operator(self):
        with pytest.raises(FragmentViolationError):
            assert_in_balg(Dedup(var("B")), 1, forbid=(Dedup,),
                           B=flat_bag_type(1))

    def test_assert_in_balg_power_nesting(self):
        deep = Powerset(Powerset(var("B")))
        with pytest.raises(FragmentViolationError):
            assert_in_balg(deep, 3, max_power_nesting=1,
                           B=flat_bag_type(1))

    def test_operators_used(self):
        query = Dedup(var("B") + var("B"))
        names = {cls.__name__ for cls in operators_used(query)}
        assert names == {"Dedup", "AdditiveUnion", "Var"}

    def test_uses_only(self):
        from repro.core.expr import AdditiveUnion, Var as VarCls
        query = var("A") + var("B")
        assert uses_only(query, [AdditiveUnion, VarCls])
        assert not uses_only(Dedup(query), [AdditiveUnion, VarCls])


class TestFragmentReport:
    def test_report_for_balg1_query(self):
        report = fragment_report(card_greater_expr(var("R"), var("S")),
                                 R=flat_bag_type(1), S=flat_bag_type(1))
        assert report.in_balg1
        assert report.power_nesting == 0
        assert report.result_type == flat_bag_type(1)
        assert report.fragment_name() == "BALG^1_0"

    def test_report_for_derived_dedup(self):
        report = fragment_report(derived_dedup(var("B"), flat_tuple_type(1)),
                                 B=flat_bag_type(1))
        assert not report.in_balg1
        assert report.in_balg2
        assert report.power_nesting == 1
        assert "Powerset" in report.operators
