"""Tests for the type system (repro.core.types)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.bag import Bag, Tup
from repro.core.errors import BagTypeError
from repro.core.types import (
    AtomType, BagType, TupleType, U, UNKNOWN, flat_bag_type,
    flat_tuple_type, is_unnested_type, parse_type, type_of, unify,
)
from tests.conftest import flat_bags, nested_bags


class TestTypeConstruction:
    def test_atom_type_singleton_equality(self):
        assert AtomType() == U
        assert hash(AtomType()) == hash(U)

    def test_tuple_type(self):
        pair = TupleType((U, U))
        assert pair.arity == 2
        assert pair.attribute(1) == U

    def test_tuple_attribute_out_of_range(self):
        with pytest.raises(BagTypeError):
            TupleType((U,)).attribute(2)

    def test_tuple_type_rejects_non_types(self):
        with pytest.raises(BagTypeError):
            TupleType(("U",))  # type: ignore[arg-type]

    def test_bag_type_rejects_non_types(self):
        with pytest.raises(BagTypeError):
            BagType("U")  # type: ignore[arg-type]

    def test_types_are_immutable(self):
        with pytest.raises(AttributeError):
            BagType(U).element = U  # type: ignore[misc]


class TestBagNesting:
    """The central measure of the paper (Section 2)."""

    def test_atom_nesting_zero(self):
        assert U.bag_nesting() == 0

    def test_flat_bag_nesting_one(self):
        assert flat_bag_type(2).bag_nesting() == 1

    def test_nested_bag_nesting_two(self):
        assert BagType(BagType(U)).bag_nesting() == 2

    def test_nesting_is_max_over_paths(self):
        # [{{U}}, U] has one path with a bag and one without.
        mixed = TupleType((BagType(U), U))
        assert mixed.bag_nesting() == 1
        assert BagType(mixed).bag_nesting() == 2

    def test_theorem61_encoding_type(self):
        # The [[ {{U}}, {{U}}, U, U ]] tuples of Theorem 6.1 live at
        # bag nesting 2 inside a nesting-3 outer bag... wait: the outer
        # bag of 4-tuples whose first two attributes are bags has
        # nesting 1 (outer) + 1 (attribute) = 2.
        config = BagType(TupleType((BagType(U), BagType(U), U, U)))
        assert config.bag_nesting() == 2

    def test_is_unnested_type(self):
        assert is_unnested_type(flat_bag_type(3))
        assert is_unnested_type(U)
        assert not is_unnested_type(BagType(BagType(U)))


class TestTypeOf:
    def test_atom(self):
        assert type_of("a") == U
        assert type_of(7) == U

    def test_flat_tuple(self):
        assert type_of(Tup("a", "b")) == flat_tuple_type(2)

    def test_flat_bag(self, sample_bag):
        assert type_of(sample_bag) == flat_bag_type(2)

    def test_empty_bag_is_polymorphic(self):
        assert type_of(Bag()) == BagType(UNKNOWN)

    def test_nested_bag(self):
        nested = Bag([Bag(["a"]), Bag()])
        assert type_of(nested) == BagType(BagType(U))

    def test_accepts(self, sample_bag):
        assert flat_bag_type(2).accepts(sample_bag)
        assert not flat_bag_type(1).accepts(sample_bag)
        assert not flat_bag_type(2).accepts("a")


class TestUnify:
    def test_unknown_absorbs(self):
        assert unify(UNKNOWN, U) == U
        assert unify(BagType(UNKNOWN), BagType(U)) == BagType(U)

    def test_same_types(self):
        assert unify(flat_bag_type(2), flat_bag_type(2)) == flat_bag_type(2)

    def test_arity_mismatch(self):
        with pytest.raises(BagTypeError):
            unify(flat_tuple_type(1), flat_tuple_type(2))

    def test_constructor_mismatch(self):
        with pytest.raises(BagTypeError):
            unify(BagType(U), flat_tuple_type(1))

    def test_deep_unification(self):
        left = BagType(TupleType((BagType(UNKNOWN), U)))
        right = BagType(TupleType((BagType(U), U)))
        assert unify(left, right) == right


class TestParseType:
    def test_atomic(self):
        assert parse_type("U") == U

    def test_flat_bag(self):
        assert parse_type("{{[U, U]}}") == flat_bag_type(2)

    def test_nested(self):
        assert parse_type("{{{{U}}}}") == BagType(BagType(U))

    def test_tuple_with_mixed_attributes(self):
        parsed = parse_type("{{[U, {{U}}]}}")
        assert parsed == BagType(TupleType((U, BagType(U))))

    def test_empty_tuple(self):
        assert parse_type("[]") == TupleType(())

    def test_whitespace_tolerated(self):
        assert parse_type(" {{ [ U , U ] }} ") == flat_bag_type(2)

    def test_reject_garbage(self):
        with pytest.raises(BagTypeError):
            parse_type("{{U")
        with pytest.raises(BagTypeError):
            parse_type("V")
        with pytest.raises(BagTypeError):
            parse_type("U U")

    def test_roundtrip_through_repr(self):
        for text in ["U", "{{U}}", "{{[U, U]}}", "{{{{[U]}}}}",
                     "{{[U, {{U}}, U]}}"]:
            parsed = parse_type(text)
            assert parse_type(repr(parsed)) == parsed


class TestTypeProperties:
    @given(flat_bags())
    def test_inferred_type_accepts_value(self, bag):
        assert type_of(bag).accepts(bag)

    @given(nested_bags())
    def test_nested_type_nesting_at_most_two(self, bag):
        assert type_of(bag).bag_nesting() <= 2

    @given(flat_bags())
    def test_unify_idempotent(self, bag):
        inferred = type_of(bag)
        assert unify(inferred, inferred) == inferred
