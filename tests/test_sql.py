"""Tests for the mini bag-SQL front end (repro.sql) — the executable
version of the introduction's claim that SQL is a bag language."""

from __future__ import annotations

import pytest

from repro.core.bag import Bag, Tup
from repro.core.errors import BagTypeError, ParseError
from repro.core.eval import evaluate
from repro.sql import (
    Catalog, ColumnRef, SelectQuery, SetOpQuery, compile_sql,
    parse_sql, run_sql,
)


@pytest.fixture
def catalog():
    return Catalog({
        "orders": ("customer", "item"),
        "vip": ("customer",),
        "returns": ("customer", "item"),
    })


@pytest.fixture
def database():
    return {
        "orders": Bag([Tup("ann", "book"), Tup("ann", "book"),
                       Tup("bob", "pen"), Tup("cid", "ink")]),
        "vip": Bag([Tup("ann"), Tup("cid")]),
        "returns": Bag([Tup("ann", "book")]),
    }


class TestParser:
    def test_select_shape(self):
        query = parse_sql("SELECT customer FROM orders")
        assert isinstance(query, SelectQuery)
        assert query.projections == [ColumnRef("customer")]
        assert query.tables == [("orders", "orders")]
        assert not query.distinct

    def test_distinct_and_all(self):
        assert parse_sql("SELECT DISTINCT customer FROM orders").distinct
        assert not parse_sql("SELECT ALL customer FROM orders").distinct

    def test_where_conjunction(self):
        query = parse_sql(
            "SELECT item FROM orders WHERE customer = 'ann' "
            "AND item != 'pen'")
        assert len(query.where) == 2
        assert query.where[0].right == "ann"
        assert query.where[1].op == "!="

    def test_qualified_columns(self):
        query = parse_sql(
            "SELECT orders.item FROM orders, vip "
            "WHERE orders.customer = vip.customer")
        assert query.projections[0].table == "orders"

    def test_set_operations(self):
        query = parse_sql("SELECT customer FROM orders UNION ALL "
                          "SELECT customer FROM vip")
        assert isinstance(query, SetOpQuery)
        assert query.op == "UNION"
        assert query.all

    def test_aliases(self):
        query = parse_sql("SELECT o1.item FROM orders AS o1, orders o2")
        assert query.tables == [("orders", "o1"), ("orders", "o2")]

    def test_count_star(self):
        from repro.sql import COUNT_STAR
        query = parse_sql("SELECT COUNT(*) FROM orders")
        assert query.projections == COUNT_STAR

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT FROM orders")
        with pytest.raises(ParseError):
            parse_sql("SELECT a FROM orders WHERE")
        with pytest.raises(ParseError):
            parse_sql("SELECT a FROM orders two extras")


class TestCompilation:
    def test_unknown_table(self, catalog):
        with pytest.raises(BagTypeError):
            compile_sql("SELECT a FROM ghosts", catalog)

    def test_unknown_column(self, catalog):
        with pytest.raises(BagTypeError):
            compile_sql("SELECT ghost FROM orders", catalog)

    def test_ambiguous_column(self, catalog):
        with pytest.raises(BagTypeError):
            compile_sql(
                "SELECT customer FROM orders, vip", catalog)

    def test_arity_mismatch_in_setop(self, catalog):
        with pytest.raises(BagTypeError):
            compile_sql("SELECT customer, item FROM orders UNION ALL "
                        "SELECT customer FROM vip", catalog)

    def test_distinct_compiles_to_eps(self, catalog):
        from repro.core.expr import Dedup
        compiled = compile_sql("SELECT DISTINCT customer FROM orders",
                               catalog)
        assert isinstance(compiled.expr, Dedup)


class TestExecution:
    def test_select_all_keeps_duplicates(self, catalog, database):
        rows = run_sql("SELECT customer FROM orders", catalog, database)
        assert rows.count(("ann",)) == 2

    def test_select_distinct(self, catalog, database):
        rows = run_sql("SELECT DISTINCT customer FROM orders", catalog,
                       database)
        assert sorted(rows) == [("ann",), ("bob",), ("cid",)]

    def test_where_constant(self, catalog, database):
        rows = run_sql("SELECT item FROM orders WHERE customer = 'ann'",
                       catalog, database)
        assert rows == [("book",), ("book",)]

    def test_join(self, catalog, database):
        rows = run_sql(
            "SELECT orders.item FROM orders, vip "
            "WHERE orders.customer = vip.customer",
            catalog, database)
        assert rows == [("book",), ("book",), ("ink",)]

    def test_count_star_counts_duplicates(self, catalog, database):
        assert run_sql("SELECT COUNT(*) FROM orders", catalog,
                       database) == [(4,)]

    def test_union_all_vs_union(self, catalog, database):
        all_rows = run_sql(
            "SELECT customer FROM orders UNION ALL "
            "SELECT customer FROM vip", catalog, database)
        distinct_rows = run_sql(
            "SELECT customer FROM orders UNION "
            "SELECT customer FROM vip", catalog, database)
        assert len(all_rows) == 6
        assert len(distinct_rows) == 3

    def test_except_all_is_monus(self, catalog, database):
        """The SQL standard's EXCEPT ALL is exactly the paper's bag
        subtraction: multiplicities subtract, floored at zero."""
        rows = run_sql(
            "SELECT customer, item FROM orders EXCEPT ALL "
            "SELECT customer, item FROM returns", catalog, database)
        assert rows.count(("ann", "book")) == 1  # 2 - 1

    def test_except_distinct(self, catalog, database):
        rows = run_sql(
            "SELECT customer, item FROM orders EXCEPT "
            "SELECT customer, item FROM returns", catalog, database)
        assert ("ann", "book") not in rows

    def test_intersect_all_is_min(self, catalog, database):
        rows = run_sql(
            "SELECT customer, item FROM orders INTERSECT ALL "
            "SELECT customer, item FROM returns", catalog, database)
        assert rows == [("ann", "book")]

    def test_star_projection(self, catalog, database):
        rows = run_sql("SELECT * FROM vip", catalog, database)
        assert sorted(rows) == [("ann",), ("cid",)]

    def test_order_comparators(self, catalog, database):
        rows = run_sql("SELECT item FROM orders WHERE item <= 'ink'",
                       catalog, database)
        assert sorted(rows) == [("book",), ("book",), ("ink",)]

    def test_self_join_with_aliases(self, catalog, database):
        """Customers who ordered two *different* items — impossible to
        express without aliasing the same table twice."""
        rows = run_sql(
            "SELECT DISTINCT o1.customer FROM orders o1, orders o2 "
            "WHERE o1.customer = o2.customer AND o1.item != o2.item",
            catalog, database)
        assert rows == []  # nobody ordered two distinct items here

        bigger = dict(database)
        from repro.core.bag import Bag, Tup
        bigger["orders"] = Bag([Tup("ann", "book"), Tup("ann", "pen"),
                                Tup("bob", "pen")])
        rows = run_sql(
            "SELECT DISTINCT o1.customer FROM orders o1, orders o2 "
            "WHERE o1.customer = o2.customer AND o1.item != o2.item",
            catalog, bigger)
        assert rows == [("ann",)]

    def test_duplicate_aliases_rejected(self, catalog):
        with pytest.raises(BagTypeError):
            compile_sql("SELECT customer FROM orders, orders", catalog)

    def test_chained_setops(self, catalog, database):
        rows = run_sql(
            "SELECT customer FROM orders UNION ALL "
            "SELECT customer FROM vip EXCEPT ALL "
            "SELECT customer FROM vip",
            catalog, database)
        # left-assoc: (orders UNION ALL vip) EXCEPT ALL vip
        assert rows.count(("ann",)) == 2

    def test_compiled_queries_are_balg1(self, catalog):
        """Every aggregated-free query of the dialect compiles into
        BALG^1 — the tractable (LOGSPACE) fragment, which is the
        paper's punchline about SQL."""
        from repro.core.fragments import max_bag_nesting
        from repro.core.types import flat_bag_type
        schema = {"orders": flat_bag_type(2), "vip": flat_bag_type(1),
                  "returns": flat_bag_type(2)}
        for text in [
            "SELECT customer FROM orders",
            "SELECT DISTINCT customer FROM orders",
            "SELECT orders.item FROM orders, vip "
            "WHERE orders.customer = vip.customer",
            "SELECT customer FROM orders EXCEPT ALL "
            "SELECT customer FROM vip",
            "SELECT COUNT(*) FROM orders",
        ]:
            compiled = compile_sql(text, catalog)
            assert max_bag_nesting(compiled.expr, schema) == 1, text
