"""Tests for the plan explainer (repro.optimizer.explain)."""

from __future__ import annotations

import pytest

from repro.core.bag import Bag, Tup
from repro.core.derived import select_attr_eq_const
from repro.core.expr import Const, Lam, Map, Tupling, Var, var
from repro.core.types import flat_bag_type
from repro.optimizer import build_plan, explain, stats_of

SCHEMA = {"A": flat_bag_type(2), "B": flat_bag_type(1)}


def _statistics():
    a = Bag([Tup(str(i), "x") for i in range(4)])
    b = Bag([Tup(str(i)) for i in range(3)])
    return {"A": stats_of(a), "B": stats_of(b)}


class TestBuildPlan:
    def test_tree_shape(self):
        plan = build_plan(var("A") * var("B"), SCHEMA, _statistics())
        assert len(plan.children) == 2
        assert plan.children[0].label().startswith("Var A")

    def test_types_annotated(self):
        plan = build_plan(var("A") * var("B"), SCHEMA)
        assert "{{[U, U, U]}}" in plan.label()

    def test_estimates_annotated(self):
        plan = build_plan(var("A") * var("B"), SCHEMA, _statistics())
        assert "est card 12" in plan.label()

    def test_lambda_bodies_not_plan_children(self):
        query = Map(Lam("t", Tupling(Const("k"))), var("A"))
        plan = build_plan(query, SCHEMA, _statistics())
        assert len(plan.children) == 1  # only the operand
        assert plan.children[0].label().startswith("Var A")

    def test_untypeable_expression_still_renders(self):
        # Cartesian of non-tuple bags fails typing; the plan falls back
        # to the bare operator tree
        from repro.core.types import BagType, U
        plan = build_plan(var("A") * var("B"),
                          {"A": BagType(U), "B": BagType(U)})
        assert plan.inferred is None
        assert "Cartesian" in plan.label()

    def test_missing_statistics_ok(self):
        plan = build_plan(var("A"), SCHEMA, None)
        assert plan.stats is None


class TestExplainText:
    def test_rendered_indentation(self):
        text = explain(select_attr_eq_const(var("A") * var("B"),
                                            1, "0"),
                       SCHEMA, _statistics())
        lines = text.splitlines()
        assert lines[0].startswith("Select")
        assert lines[1].startswith("  Cartesian")
        assert lines[2].startswith("    Var A")

    def test_selectivity_parameter(self):
        query = select_attr_eq_const(var("A"), 1, "0")
        half = explain(query, SCHEMA, _statistics(), selectivity=0.5)
        tenth = explain(query, SCHEMA, _statistics(), selectivity=0.1)
        assert half != tenth


class TestCliExplain:
    def test_explain_command(self):
        import io
        from repro.cli import Session
        out = io.StringIO()
        session = Session(out=out)
        session.handle("B = {{['a','b'], ['a','b']}}")
        session.handle(":explain pi[1](B)")
        text = out.getvalue()
        assert "Map" in text
        assert "Var B" in text
        assert "est card" in text
