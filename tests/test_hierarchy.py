"""Tests for the Section 6 hierarchy constructions
(repro.complexity.hierarchy)."""

from __future__ import annotations

import pytest

from repro.arith import input_bag
from repro.complexity.hierarchy import (
    BALG3, BALGK, POWERBAG, domain_expr_for_level, doubling_expr_balg3,
    doubling_expr_balgk, doubling_expr_powerbag, nesting_budget,
    normalize_expr, verify_nesting,
)
from repro.core.errors import BagTypeError
from repro.core.eval import evaluate
from repro.core.expr import var
from repro.core.fragments import power_nesting


class TestDoublingSemantics:
    def test_balg3_doubles_with_offset(self):
        # N(P(P(N(b_n)))) = 2^(n+1) markers (P of an (n+1)-element set)
        for n in (1, 2, 3):
            result = evaluate(doubling_expr_balg3(var("B")),
                              B=input_bag(n))
            assert result.cardinality == 2 ** (n + 1)

    def test_powerbag_doubles_exactly(self):
        for n in (1, 2, 3, 4):
            result = evaluate(doubling_expr_powerbag(
                normalize_expr(var("B"))), B=input_bag(n))
            assert result.cardinality == 2 ** n

    def test_balgk_towers(self):
        # k = 4: three consecutive powersets: from n markers to
        # |P(P(P(n markers)))| = 2^(2^(n+1)) elements
        result = evaluate(doubling_expr_balgk(var("B"), 4),
                          B=input_bag(1), powerset_budget=1 << 16)
        assert result.cardinality == 2 ** (2 ** 2)

    def test_balgk_requires_k_at_least_3(self):
        with pytest.raises(BagTypeError):
            doubling_expr_balgk(var("B"), 2)

    def test_normalize(self):
        result = evaluate(normalize_expr(var("B")), B=input_bag(5))
        assert result.cardinality == 5
        assert result.distinct_count == 1


class TestNestingAccounting:
    def test_balg3_budget(self):
        # Theorem 6.2: 2i + 2
        rows = verify_nesting(BALG3, [0, 1, 2, 3])
        for level, measured, predicted in rows:
            assert measured == predicted == 2 * level + 2

    def test_balgk_budget(self):
        # Proposition 6.3: (k-1)i + 2
        for k in (3, 4, 5):
            rows = verify_nesting(BALGK(k), [0, 1, 2])
            for level, measured, predicted in rows:
                assert measured == predicted == (k - 1) * level + 2

    def test_powerbag_budget(self):
        # Proposition 6.4: i + 2
        rows = verify_nesting(POWERBAG, [0, 1, 2, 3, 4])
        for level, measured, predicted in rows:
            assert measured == predicted == level + 2

    def test_hierarchy_orders_constructions(self):
        """At equal levels the powerbag is the cheapest and BALG^3 the
        most expensive per level — Prop 6.4's point that Pb collapses
        the accounting."""
        level = 3
        assert (nesting_budget(POWERBAG, level)
                < nesting_budget(BALG3, level)
                < nesting_budget(BALGK(4), level))

    def test_domain_nesting_measured(self):
        domain = domain_expr_for_level(BALG3, 2)
        assert power_nesting(domain) == 5  # 2*2 + 1 (no guessing P)

    def test_negative_level_rejected(self):
        with pytest.raises(BagTypeError):
            domain_expr_for_level(BALG3, -1)


class TestTinyEndToEnd:
    def test_level_one_domain_contents(self):
        """D = P(E(N(b_1))) for BALG^3: subbags of 4 markers — the
        integers 0..4 at the next hyper level."""
        domain = evaluate(domain_expr_for_level(BALG3, 1),
                          B=input_bag(1), powerset_budget=1 << 12)
        sizes = sorted(entry.cardinality for entry in domain.distinct())
        assert sizes == [0, 1, 2, 3, 4]

    def test_level_one_powerbag_domain(self):
        domain = evaluate(domain_expr_for_level(POWERBAG, 1),
                          B=input_bag(2), powerset_budget=1 << 12)
        sizes = sorted(entry.cardinality for entry in domain.distinct())
        assert sizes == [0, 1, 2, 3, 4]  # 0..2^2
