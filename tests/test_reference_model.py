"""Differential testing against an explicit-duplicates reference model.

Section 3 notes that bags "can be optimized by representing each object
in association with the number of its occurrences, instead of storing
explicitly duplicates" — which is exactly how :class:`repro.core.Bag`
is implemented.  The *standard encoding* of Section 2, however, is the
explicit one.  This module implements the operators a second time over
explicit Python lists (the standard-encoding view, duplicates written
out) and checks that the count-based production implementation agrees
on random inputs — the two representations are interchangeable, as the
paper asserts.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Any, List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ops
from repro.core.bag import Bag, Tup


# ----------------------------------------------------------------------
# The reference model: bags as plain lists with duplicates written out
# ----------------------------------------------------------------------

def list_additive_union(left: List, right: List) -> List:
    return list(left) + list(right)


def list_subtraction(left: List, right: List) -> List:
    budget = Counter(right)
    out = []
    for element in left:
        if budget[element] > 0:
            budget[element] -= 1
        else:
            out.append(element)
    return out


def list_max_union(left: List, right: List) -> List:
    counts = Counter(left) | Counter(right)   # Counter's | is max
    return list(counts.elements())


def list_intersection(left: List, right: List) -> List:
    counts = Counter(left) & Counter(right)   # Counter's & is min
    return list(counts.elements())


def list_cartesian(left: List, right: List) -> List:
    return [l.concat(r) for l in left for r in right]


def list_map(func, bag: List) -> List:
    return [func(element) for element in bag]


def list_select(predicate, bag: List) -> List:
    return [element for element in bag if predicate(element)]


def list_dedup(bag: List) -> List:
    seen = []
    for element in bag:
        if element not in seen:
            seen.append(element)
    return seen


def list_powerset(bag: List) -> List[List]:
    """All distinct subbags, enumerated over the explicit encoding.

    Chooses a sub-multiset by per-element counts (not by positions),
    so each subbag appears once — the powerset, not the powerbag.
    """
    counts = Counter(bag)
    keys = list(counts)
    subbags = []
    for picks in itertools.product(*(range(counts[k] + 1)
                                     for k in keys)):
        sub = []
        for key, picked in zip(keys, picks):
            sub.extend([key] * picked)
        subbags.append(sub)
    return subbags


def list_powerbag(bag: List) -> List[List]:
    """Definition 5.1 over explicit duplicates: tag the positions,
    take all 2^n position subsets, untag."""
    out = []
    for mask in range(2 ** len(bag)):
        out.append([element for position, element in enumerate(bag)
                    if mask & (1 << position)])
    return out


def list_bag_destroy(bag: List[List]) -> List:
    out: List = []
    for inner in bag:
        out.extend(inner)
    return out


def as_bag(elements: List) -> Bag:
    return Bag(elements)


def same(bag: Bag, reference: List) -> bool:
    return bag == Bag(reference)


# ----------------------------------------------------------------------
# Differential tests
# ----------------------------------------------------------------------

tuples = st.builds(Tup, st.sampled_from("ab"), st.sampled_from("xy"))
element_lists = st.lists(tuples, max_size=6)
SETTINGS = dict(max_examples=80, deadline=None)


class TestBinaryOperators:
    @given(element_lists, element_lists)
    @settings(**SETTINGS)
    def test_additive_union(self, left, right):
        assert same(ops.additive_union(as_bag(left), as_bag(right)),
                    list_additive_union(left, right))

    @given(element_lists, element_lists)
    @settings(**SETTINGS)
    def test_subtraction(self, left, right):
        assert same(ops.subtraction(as_bag(left), as_bag(right)),
                    list_subtraction(left, right))

    @given(element_lists, element_lists)
    @settings(**SETTINGS)
    def test_max_union(self, left, right):
        assert same(ops.max_union(as_bag(left), as_bag(right)),
                    list_max_union(left, right))

    @given(element_lists, element_lists)
    @settings(**SETTINGS)
    def test_intersection(self, left, right):
        assert same(ops.intersection(as_bag(left), as_bag(right)),
                    list_intersection(left, right))

    @given(st.lists(tuples, max_size=4), st.lists(tuples, max_size=4))
    @settings(**SETTINGS)
    def test_cartesian(self, left, right):
        assert same(ops.cartesian(as_bag(left), as_bag(right)),
                    list_cartesian(left, right))


class TestUnaryOperators:
    @given(element_lists)
    @settings(**SETTINGS)
    def test_map(self, elements):
        swap = lambda t: Tup(t.attribute(2), t.attribute(1))
        assert same(ops.map_bag(swap, as_bag(elements)),
                    list_map(swap, elements))

    @given(element_lists)
    @settings(**SETTINGS)
    def test_select(self, elements):
        keep = lambda t: t.attribute(1) == "a"
        assert same(ops.select(keep, as_bag(elements)),
                    list_select(keep, elements))

    @given(element_lists)
    @settings(**SETTINGS)
    def test_dedup(self, elements):
        assert same(ops.dedup(as_bag(elements)), list_dedup(elements))

    @given(st.lists(tuples, max_size=4))
    @settings(**SETTINGS)
    def test_powerset(self, elements):
        reference = [Bag(sub) for sub in list_powerset(elements)]
        produced = ops.powerset(as_bag(elements))
        assert produced == Bag(reference)

    @given(st.lists(tuples, max_size=4))
    @settings(**SETTINGS)
    def test_powerbag(self, elements):
        reference = [Bag(sub) for sub in list_powerbag(elements)]
        produced = ops.powerbag(as_bag(elements))
        assert produced == Bag(reference)

    @given(st.lists(st.lists(tuples, max_size=3), max_size=4))
    @settings(**SETTINGS)
    def test_bag_destroy(self, nested):
        outer = Bag([Bag(inner) for inner in nested])
        assert same(ops.bag_destroy(outer), list_bag_destroy(nested))


class TestEncodingFaithfulness:
    @given(element_lists)
    @settings(**SETTINGS)
    def test_standard_encoding_size_matches_list_length(self, elements):
        """encoding_size counts duplicates exactly like the explicit
        list does (up to the fixed per-element tuple overhead)."""
        from repro.core.database import encoding_size
        bag = as_bag(elements)
        per_tuple = 3  # 1 for the tuple + 2 atoms
        assert encoding_size(bag) == 1 + per_tuple * len(elements)
