"""Tests for the expression AST and the instrumented evaluator."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.bag import Bag, EMPTY_BAG, Tup
from repro.core.database import encoding_size
from repro.core.errors import (
    BagTypeError, ResourceLimitError, UnboundVariableError,
)
from repro.core.eval import EvalStats, Evaluator, evaluate
from repro.core.expr import (
    AdditiveUnion, Attribute, BagDestroy, Bagging, Cartesian, Const,
    Dedup, EMPTY, Intersection, Lam, Map, MaxUnion, Powerbag, Powerset,
    Select, Subtraction, Tupling, Var, var,
)
from tests.conftest import atom_bags, flat_bags


class TestBasicEvaluation:
    def test_var_lookup(self, sample_bag):
        assert evaluate(var("B"), B=sample_bag) == sample_bag

    def test_const(self):
        assert evaluate(Const("a")) == "a"
        assert evaluate(EMPTY) == EMPTY_BAG

    def test_unbound_variable(self):
        with pytest.raises(UnboundVariableError):
            evaluate(var("missing"))

    def test_operator_sugar(self, sample_bag):
        doubled = var("B") + var("B")
        assert evaluate(doubled, B=sample_bag).cardinality == 6
        gone = var("B") - var("B")
        assert evaluate(gone, B=sample_bag) == EMPTY_BAG
        assert evaluate(var("B") | var("B"), B=sample_bag) == sample_bag
        assert evaluate(var("B") & var("B"), B=sample_bag) == sample_bag

    def test_cartesian_sugar(self, sample_bag):
        assert evaluate(var("B") * var("B"),
                        B=sample_bag).cardinality == 9

    def test_tupling_and_bagging(self):
        expr = Bagging(Tupling(Const("a"), Const("b")))
        assert evaluate(expr) == Bag.of(Tup("a", "b"))

    def test_attribute(self):
        expr = Attribute(Const(Tup("x", "y")), 2)
        assert evaluate(expr) == "y"

    def test_powerset_node(self):
        result = evaluate(Powerset(var("B")), B=Bag.from_counts({"a": 2}))
        assert result.cardinality == 3

    def test_powerbag_node(self):
        result = evaluate(Powerbag(var("B")), B=Bag.from_counts({"a": 2}))
        assert result.cardinality == 4

    def test_bag_destroy_node(self):
        nested = Bag([Bag(["a", "a"]), Bag(["b"])])
        assert evaluate(BagDestroy(var("N")), N=nested) == Bag.from_counts(
            {"a": 2, "b": 1})

    def test_dedup_node(self, sample_bag):
        assert evaluate(Dedup(var("B")), B=sample_bag).is_set()


class TestLambdas:
    def test_map_with_lambda(self, sample_bag):
        swap = Lam("t", Tupling(Attribute(Var("t"), 2),
                                Attribute(Var("t"), 1)))
        swapped = evaluate(Map(swap, var("B")), B=sample_bag)
        assert swapped.multiplicity(Tup("b", "a")) == 2

    def test_select_equality(self, sample_bag):
        query = Select(Lam("t", Attribute(Var("t"), 1)),
                       Lam("t", Const("a")), var("B"))
        assert evaluate(query, B=sample_bag) == Bag.from_counts(
            {Tup("a", "b"): 2})

    def test_select_order_comparators(self):
        bag = Bag.of(Tup(1), Tup(2), Tup(3))
        below = Select(Lam("t", Attribute(Var("t"), 1)),
                       Lam("t", Const(2)), var("B"), op="le")
        assert evaluate(below, B=bag).cardinality == 2
        strictly = Select(Lam("t", Attribute(Var("t"), 1)),
                          Lam("t", Const(2)), var("B"), op="lt")
        assert evaluate(strictly, B=bag).cardinality == 1
        unequal = Select(Lam("t", Attribute(Var("t"), 1)),
                         Lam("t", Const(2)), var("B"), op="ne")
        assert evaluate(unequal, B=bag).cardinality == 2

    def test_invalid_comparator_rejected(self):
        with pytest.raises(BagTypeError):
            Select(Lam("t", Var("t")), Lam("t", Var("t")), var("B"),
                   op="ge")

    def test_lexical_scoping(self):
        """An inner lambda sees the enclosing lambda's variable —
        the pattern the Section 4 parity query depends on."""
        outer_bag = Bag.of(Tup("a"), Tup("b"))
        # For each x in B, count the elements equal to x: MAP over B of
        # (select y = x from B) collapsed to its cardinality marker.
        inner = Select(Lam("y", Var("y")), Lam("y", Var("x")), var("B"))
        query = Map(Lam("x", inner), var("B"))
        result = evaluate(query, B=outer_bag)
        assert result.multiplicity(Bag.of(Tup("a"))) == 1
        assert result.multiplicity(Bag.of(Tup("b"))) == 1

    def test_shadowing(self):
        # The innermost binding of the same name wins.
        body = Map(Lam("x", Var("x")), var("B"))
        shadowed = Map(Lam("x", body), var("Outer"))
        result = evaluate(shadowed, B=Bag.of("z"),
                          Outer=Bag.of("ignored"))
        assert result == Bag.of(Bag.of("z"))

    def test_lam_requires_expression_body(self):
        with pytest.raises(BagTypeError):
            Lam("x", "not an expression")  # type: ignore[arg-type]

    def test_map_requires_lam(self):
        with pytest.raises(BagTypeError):
            Map("not a lam", var("B"))  # type: ignore[arg-type]


class TestStructure:
    def test_free_vars(self):
        query = Map(Lam("x", Var("x")), var("B")) + var("C")
        assert query.free_vars() == frozenset({"B", "C"})

    def test_bound_var_not_free(self):
        query = Map(Lam("x", AdditiveUnion(Var("x"), var("D"))), var("B"))
        assert query.free_vars() == frozenset({"B", "D"})

    def test_size_counts_nodes(self):
        assert var("B").size() == 1
        assert (var("B") + var("C")).size() == 3

    def test_walk_covers_lambda_bodies(self):
        query = Map(Lam("x", var("Hidden")), var("B"))
        names = {node.name for node in query.walk()
                 if isinstance(node, Var)}
        assert names == {"Hidden", "B", }

    def test_structural_equality(self):
        assert var("B") + var("C") == var("B") + var("C")
        assert var("B") + var("C") != var("C") + var("B")
        assert hash(var("B") + var("C")) == hash(var("B") + var("C"))

    def test_repr_is_stable(self):
        expr = Select(Lam("t", Attribute(Var("t"), 1)),
                      Lam("t", Const("a")), var("B"))
        assert "σ" in repr(expr)
        assert "α1" in repr(expr)


class TestInstrumentation:
    def test_op_counts(self, sample_bag):
        evaluator = Evaluator()
        evaluator.run(var("B") + var("B"), B=sample_bag)
        assert evaluator.stats.op_counts["AdditiveUnion"] == 1
        assert evaluator.stats.op_counts["Var"] == 2

    def test_peak_multiplicity(self):
        bag = Bag.from_counts({Tup("a"): 3})
        evaluator = Evaluator()
        evaluator.run(var("B") * var("B"), B=bag)
        assert evaluator.stats.peak_multiplicity == 9

    def test_peak_encoding_size(self, sample_bag):
        evaluator = Evaluator()
        evaluator.run(var("B"), B=sample_bag)
        assert evaluator.stats.peak_encoding_size == encoding_size(
            sample_bag)

    def test_stats_disabled(self, sample_bag):
        evaluator = Evaluator(track_stats=False)
        evaluator.run(var("B"), B=sample_bag)
        assert evaluator.stats.nodes_evaluated == 0

    def test_merged_stats(self):
        left, right = EvalStats(), EvalStats()
        left.op_counts = {"Var": 2}
        right.op_counts = {"Var": 1, "Map": 3}
        left.peak_multiplicity = 5
        right.peak_multiplicity = 7
        merged = left.merged_with(right)
        assert merged.op_counts == {"Var": 3, "Map": 3}
        assert merged.peak_multiplicity == 7

    def test_powerset_budget_propagates(self):
        evaluator = Evaluator(powerset_budget=4)
        with pytest.raises(ResourceLimitError):
            evaluator.run(Powerset(var("B")),
                          B=Bag.from_counts({"a": 10}))


class TestEvaluatorEnvironment:
    def test_database_mapping_and_kwargs_combine(self, sample_bag):
        result = evaluate(var("A") + var("B"),
                          {"A": sample_bag}, B=sample_bag)
        assert result.cardinality == 6

    def test_kwargs_override_database(self, sample_bag):
        override = Bag.of(Tup("z", "z"))
        result = evaluate(var("B"), {"B": sample_bag}, B=override)
        assert result == override


class TestEvaluationProperties:
    @given(atom_bags(), atom_bags())
    def test_expression_layer_matches_ops(self, left, right):
        from repro.core import ops
        env = {"L": left, "R": right}
        assert evaluate(var("L") + var("R"), env) == ops.additive_union(
            left, right)
        assert evaluate(var("L") - var("R"), env) == ops.subtraction(
            left, right)
        assert evaluate(var("L") | var("R"), env) == ops.max_union(
            left, right)
        assert evaluate(var("L") & var("R"), env) == ops.intersection(
            left, right)

    @given(flat_bags())
    def test_identity_map(self, bag):
        assert evaluate(Map(Lam("x", Var("x")), var("B")), B=bag) == bag

    @given(flat_bags())
    def test_select_true_is_identity(self, bag):
        always = Select(Lam("x", Const("k")), Lam("x", Const("k")),
                        var("B"))
        assert evaluate(always, B=bag) == bag

    @given(flat_bags())
    def test_select_false_is_empty(self, bag):
        never = Select(Lam("x", Const("k")), Lam("x", Const("j")),
                       var("B"))
        assert evaluate(never, B=bag) == EMPTY_BAG
