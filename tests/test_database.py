"""Tests for schemas, instances, standard encoding, and genericity
(repro.core.database — the Section 2 framework)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bag import Bag, EMPTY_BAG, Tup
from repro.core.database import (
    Instance, Schema, active_domain, apply_renaming, are_isomorphic,
    encoding_size,
)
from repro.core.derived import card_greater_expr, parity_even_expr
from repro.core.errors import BagTypeError
from repro.core.eval import evaluate
from repro.core.expr import var
from repro.core.types import BagType, U, flat_bag_type
from tests.conftest import flat_bags


class TestEncodingSize:
    def test_atom(self):
        assert encoding_size("a") == 1

    def test_tuple(self):
        assert encoding_size(Tup("a", "b")) == 3

    def test_bag_duplicates_explicit(self):
        # The paper insists duplicates are written out, not run-length
        # compressed: n copies cost n times as much.
        bag = Bag.from_counts({Tup("a"): 4})
        assert encoding_size(bag) == 1 + 4 * 2

    def test_nested(self):
        nested = Bag([Bag(["a", "a"]), Bag(["b"])])
        assert encoding_size(nested) == 1 + (1 + 2) + (1 + 1)

    def test_empty(self):
        assert encoding_size(EMPTY_BAG) == 1

    @given(flat_bags())
    def test_monotone_in_multiplicity(self, bag):
        doubled = Bag.from_counts(
            {element: 2 * count for element, count in bag.items()})
        assert encoding_size(doubled) >= encoding_size(bag)


class TestActiveDomain:
    def test_collects_atoms_everywhere(self):
        value = Bag([Tup("a", Bag.of("b", "c"))])
        assert active_domain(value) == frozenset({"a", "b", "c"})

    def test_empty(self):
        assert active_domain(EMPTY_BAG) == frozenset()


class TestRenaming:
    def test_componentwise(self):
        bag = Bag.from_counts({Tup("a", "b"): 2})
        renamed = apply_renaming(bag, {"a": "x", "b": "y"})
        assert renamed == Bag.from_counts({Tup("x", "y"): 2})

    def test_partial_renaming(self):
        assert apply_renaming(Tup("a", "b"), {"a": "x"}) == Tup("x", "b")

    def test_nested_renaming(self):
        nested = Bag([Bag.of("a", "a")])
        assert apply_renaming(nested, {"a": "z"}) == Bag([Bag.of("z", "z")])

    def test_non_injective_renaming_merges(self):
        bag = Bag.of("a", "b")
        assert apply_renaming(bag, {"a": "z", "b": "z"}) == Bag.from_counts(
            {"z": 2})


class TestIsomorphism:
    def test_isomorphic_instances(self):
        left = {"B": Bag.from_counts({Tup("a", "b"): 2, Tup("b", "a"): 1})}
        right = {"B": Bag.from_counts({Tup("x", "y"): 2, Tup("y", "x"): 1})}
        assert are_isomorphic(left, right)

    def test_multiplicities_must_match(self):
        left = {"B": Bag.from_counts({Tup("a"): 2})}
        right = {"B": Bag.from_counts({Tup("x"): 3})}
        assert not are_isomorphic(left, right)

    def test_schema_names_must_match(self):
        assert not are_isomorphic({"A": EMPTY_BAG}, {"B": EMPTY_BAG})

    def test_domain_sizes_must_match(self):
        left = {"B": Bag.of(Tup("a"), Tup("b"))}
        right = {"B": Bag.of(Tup("x"))}
        assert not are_isomorphic(left, right)

    def test_guard_against_blowup(self):
        big = {"B": Bag([Tup(str(i)) for i in range(12)])}
        with pytest.raises(BagTypeError):
            are_isomorphic(big, big, max_domain=8)


class TestGenericityOfQueries:
    """Queries of the algebra are generic (Section 2): isomorphic
    inputs give isomorphic outputs.  We check it on concrete queries."""

    @given(flat_bags(arity=1, max_size=5), flat_bags(arity=1, max_size=5))
    def test_card_greater_is_generic(self, left, right):
        # Rename every atom with a fresh name; the boolean answer must
        # not change.
        mapping = {atom: f"fresh-{atom}" for atom in
                   active_domain(left) | active_domain(right)}
        query = card_greater_expr(var("L"), var("R"))
        original = evaluate(query, L=left, R=right).is_empty()
        renamed = evaluate(query, L=apply_renaming(left, mapping),
                           R=apply_renaming(right, mapping)).is_empty()
        assert original == renamed

    def test_parity_depends_only_on_order_type(self):
        # Order-preserving renamings keep the parity verdict.
        relation = Bag([Tup(i) for i in range(4)])
        shifted = apply_renaming(relation, {i: i + 100 for i in range(4)})
        query = parity_even_expr(var("R"))
        assert (evaluate(query, R=relation).is_empty()
                == evaluate(query, R=shifted).is_empty())


class TestSchemaAndInstance:
    def test_schema_construction(self):
        schema = Schema({"G": flat_bag_type(2), "R": flat_bag_type(1)})
        assert set(schema.names()) == {"G", "R"}
        assert schema.type_of("G") == flat_bag_type(2)
        assert "G" in schema
        assert len(schema) == 2

    def test_schema_rejects_non_bag_types(self):
        with pytest.raises(BagTypeError):
            Schema({"G": U})

    def test_schema_rejects_bad_names(self):
        with pytest.raises(BagTypeError):
            Schema({"": flat_bag_type(1)})

    def test_schema_bag_nesting(self):
        schema = Schema({"flat": flat_bag_type(1),
                         "nested": BagType(BagType(U))})
        assert schema.bag_nesting() == 2

    def test_instance_type_checked(self):
        schema = Schema({"R": flat_bag_type(1)})
        Instance(schema, {"R": Bag.of(Tup("a"))})  # fine
        with pytest.raises(BagTypeError):
            Instance(schema, {"R": Bag.of(Tup("a", "b"))})

    def test_instance_names_checked(self):
        schema = Schema({"R": flat_bag_type(1)})
        with pytest.raises(BagTypeError):
            Instance(schema, {})
        with pytest.raises(BagTypeError):
            Instance(schema, {"R": EMPTY_BAG, "S": EMPTY_BAG})

    def test_instance_empty_bag_fits_any_type(self):
        schema = Schema({"R": flat_bag_type(3)})
        instance = Instance(schema, {"R": EMPTY_BAG})
        assert instance["R"] == EMPTY_BAG

    def test_instance_size_and_domain(self):
        schema = Schema({"R": flat_bag_type(1)})
        instance = Instance(schema, {"R": Bag.from_counts({Tup("a"): 2})})
        assert instance.size() == encoding_size(instance["R"])
        assert instance.domain() == frozenset({"a"})

    def test_instance_rename(self):
        schema = Schema({"R": flat_bag_type(1)})
        instance = Instance(schema, {"R": Bag.of(Tup("a"))})
        renamed = instance.rename({"a": "b"})
        assert renamed["R"] == Bag.of(Tup("b"))

    def test_evaluate_accepts_instance(self):
        schema = Schema({"R": flat_bag_type(1)})
        instance = Instance(schema, {"R": Bag.of(Tup("a"))})
        assert evaluate(var("R"), instance) == Bag.of(Tup("a"))
