"""Tests for the operator semantics (repro.core.ops), including the
algebraic laws the paper relies on (Section 3) and the worked powerbag
example of Definition 5.1."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ops
from repro.core.bag import Bag, EMPTY_BAG, Tup
from repro.core.errors import BagTypeError, ResourceLimitError
from tests.conftest import (
    atom_bags, flat_bags, nested_bags, small_multiplicity_bags,
)


class TestAdditiveUnion:
    def test_multiplicities_add(self):
        left = Bag.from_counts({"a": 2, "b": 1})
        right = Bag.from_counts({"a": 1, "c": 4})
        result = ops.additive_union(left, right)
        assert result == Bag.from_counts({"a": 3, "b": 1, "c": 4})

    def test_empty_identity(self, sample_bag):
        assert ops.additive_union(sample_bag, EMPTY_BAG) == sample_bag

    def test_type_mismatch_rejected(self):
        with pytest.raises(BagTypeError):
            ops.additive_union(Bag.of(Tup("a")), Bag.of(Tup("a", "b")))

    def test_non_bag_rejected(self):
        with pytest.raises(BagTypeError):
            ops.additive_union(Tup("a"), Bag())  # type: ignore[arg-type]


class TestSubtraction:
    def test_monus_semantics(self):
        left = Bag.from_counts({"a": 3, "b": 1})
        right = Bag.from_counts({"a": 1, "b": 5})
        assert ops.subtraction(left, right) == Bag.from_counts({"a": 2})

    def test_self_subtraction_empty(self, sample_bag):
        assert ops.subtraction(sample_bag, sample_bag) == EMPTY_BAG


class TestMaxUnionAndIntersection:
    def test_max_union(self):
        left = Bag.from_counts({"a": 3, "b": 1})
        right = Bag.from_counts({"a": 1, "c": 2})
        assert ops.max_union(left, right) == Bag.from_counts(
            {"a": 3, "b": 1, "c": 2})

    def test_intersection(self):
        left = Bag.from_counts({"a": 3, "b": 1})
        right = Bag.from_counts({"a": 1, "c": 2})
        assert ops.intersection(left, right) == Bag.from_counts({"a": 1})

    def test_on_sets_they_coincide_with_set_ops(self):
        # Section 3: on duplicate-free bags the operators behave exactly
        # as the relational ones.
        left = Bag.of("a", "b")
        right = Bag.of("b", "c")
        assert ops.max_union(left, right).support() == {"a", "b", "c"}
        assert ops.intersection(left, right).support() == {"b"}
        assert ops.max_union(left, right).is_set()


class TestConstructive:
    def test_tupling_and_bagging(self):
        assert ops.tupling("a", "b") == Tup("a", "b")
        assert ops.bagging("a") == Bag.of("a")
        assert ops.bagging("a").n_belongs("a", 1)

    def test_cartesian_multiplies_counts(self):
        left = Bag.from_counts({Tup("a"): 2})
        right = Bag.from_counts({Tup("x"): 3})
        product = ops.cartesian(left, right)
        assert product == Bag.from_counts({Tup("a", "x"): 6})

    def test_cartesian_concatenates_arities(self):
        product = ops.cartesian(Bag.of(Tup("a", "b")), Bag.of(Tup("c")))
        assert product.an_element() == Tup("a", "b", "c")

    def test_cartesian_requires_tuples(self):
        with pytest.raises(BagTypeError):
            ops.cartesian(Bag.of("a"), Bag.of(Tup("b")))


class TestPowerset:
    def test_single_constant_cardinality(self):
        # Section 1: powerset of n copies of one constant has n+1
        # elements.
        bag = Bag.from_counts({"a": 4})
        power = ops.powerset(bag)
        assert power.cardinality == 5
        assert power.is_set()

    def test_all_subbags_present_once(self):
        bag = Bag.from_counts({"a": 2, "b": 1})
        power = ops.powerset(bag)
        assert power.cardinality == (2 + 1) * (1 + 1)
        assert power.multiplicity(Bag.from_counts({"a": 1})) == 1
        assert power.multiplicity(EMPTY_BAG) == 1
        assert power.multiplicity(bag) == 1

    def test_cardinality_formula(self):
        bag = Bag.from_counts({"a": 3, "b": 2, "c": 1})
        assert ops.powerset_cardinality(bag) == 4 * 3 * 2
        assert ops.powerset(bag).cardinality == 4 * 3 * 2

    def test_budget_enforced(self):
        bag = Bag.from_counts({"a": 100})
        with pytest.raises(ResourceLimitError):
            ops.powerset(bag, budget=50)

    def test_powerset_of_empty(self):
        assert ops.powerset(EMPTY_BAG) == Bag.of(EMPTY_BAG)


class TestPowerbag:
    def test_definition_51_worked_example(self):
        # Pb([[a,a]]) = [[ {{}}, {{a}}, {{a}}, {{a,a}} ]]
        result = ops.powerbag(Bag.of("a", "a"))
        assert result.multiplicity(EMPTY_BAG) == 1
        assert result.multiplicity(Bag.of("a")) == 2
        assert result.multiplicity(Bag.of("a", "a")) == 1
        assert result.cardinality == 4

    def test_powerset_vs_powerbag_on_duplicates(self):
        # P([[a,a]]) = [[ {{}}, {{a}}, {{a,a}} ]]
        bag = Bag.of("a", "a")
        assert ops.powerset(bag).cardinality == 3
        assert ops.powerbag(bag).cardinality == 4

    def test_total_is_two_to_the_n(self):
        for n in range(5):
            bag = Bag.from_counts({"a": n}) if n else EMPTY_BAG
            assert ops.powerbag(bag).cardinality == 2 ** n
            assert ops.powerbag_total(bag) == 2 ** n

    def test_multiplicity_is_binomial(self):
        bag = Bag.from_counts({"a": 4, "b": 2})
        # choosing 2 of 4 a's and 1 of 2 b's: C(4,2)*C(2,1) = 12
        sub = Bag.from_counts({"a": 2, "b": 1})
        assert ops.powerbag_multiplicity(bag, sub) == 12
        assert ops.powerbag(bag).multiplicity(sub) == 12

    def test_multiplicity_zero_for_non_subbag(self):
        assert ops.powerbag_multiplicity(Bag.of("a"), Bag.of("b")) == 0

    def test_on_sets_powerbag_equals_powerset(self):
        bag = Bag.of("a", "b", "c")
        assert ops.powerbag(bag) == ops.powerset(bag)

    def test_budget_enforced(self):
        with pytest.raises(ResourceLimitError):
            ops.powerbag(Bag.from_counts({"a": 64}), budget=1000)


class TestDestructive:
    def test_attribute(self):
        assert ops.attribute(Tup("a", "b"), 2) == "b"

    def test_attribute_type_errors(self):
        with pytest.raises(BagTypeError):
            ops.attribute("atom", 1)  # type: ignore[arg-type]
        with pytest.raises(BagTypeError):
            ops.attribute(Tup("a"), 3)

    def test_bag_destroy_additive(self):
        nested = Bag([Bag(["a", "a"]), Bag(["a", "b"])])
        assert ops.bag_destroy(nested) == Bag.from_counts(
            {"a": 3, "b": 1})

    def test_bag_destroy_respects_outer_multiplicity(self):
        # A member bag occurring twice contributes twice.
        nested = Bag.from_counts({Bag(["a"]): 2})
        assert ops.bag_destroy(nested) == Bag.from_counts({"a": 2})

    def test_bag_destroy_requires_nesting(self):
        with pytest.raises(BagTypeError):
            ops.bag_destroy(Bag.of("a"))

    def test_bag_destroy_empty(self):
        assert ops.bag_destroy(EMPTY_BAG) == EMPTY_BAG


class TestFilters:
    def test_map_adds_colliding_multiplicities(self):
        # Section 3: MAP_beta([[a,a,b]]) = [[{{a}},{{a}},{{b}}]]
        bag = Bag.of("a", "a", "b")
        result = ops.map_bag(ops.bagging, bag)
        assert result.multiplicity(Bag.of("a")) == 2
        assert result.multiplicity(Bag.of("b")) == 1

    def test_map_collision(self):
        bag = Bag.of(Tup("a", "x"), Tup("a", "y"))
        collapsed = ops.map_bag(lambda t: t.attribute(1), bag)
        assert collapsed == Bag.from_counts({"a": 2})

    def test_select_preserves_multiplicity(self):
        bag = Bag.from_counts({Tup("a"): 3, Tup("b"): 2})
        kept = ops.select(lambda t: t.attribute(1) == "a", bag)
        assert kept == Bag.from_counts({Tup("a"): 3})

    def test_dedup(self, sample_bag):
        deduped = ops.dedup(sample_bag)
        assert deduped.is_set()
        assert deduped.support() == sample_bag.support()

    def test_project(self, sample_bag):
        projected = ops.project(sample_bag, 2, 1)
        assert projected.multiplicity(Tup("b", "a")) == 2
        assert projected.multiplicity(Tup("a", "b")) == 1

    def test_member_and_contains(self, sample_bag):
        assert ops.member(Tup("a", "b"), sample_bag)
        assert not ops.member(Tup("c", "c"), sample_bag)
        assert ops.contains_subbag(sample_bag, Bag.of(Tup("a", "b")))
        assert not ops.contains_subbag(
            sample_bag, Bag.from_counts({Tup("a", "b"): 5}))


# ----------------------------------------------------------------------
# Algebraic laws (Section 3: associativity, commutativity, ...)
# ----------------------------------------------------------------------

class TestAlgebraicLaws:
    @given(atom_bags(), atom_bags())
    def test_additive_union_commutative(self, left, right):
        assert (ops.additive_union(left, right)
                == ops.additive_union(right, left))

    @given(atom_bags(), atom_bags(), atom_bags())
    def test_additive_union_associative(self, a, b, c):
        assert (ops.additive_union(ops.additive_union(a, b), c)
                == ops.additive_union(a, ops.additive_union(b, c)))

    @given(atom_bags(), atom_bags())
    def test_max_union_commutative(self, left, right):
        assert ops.max_union(left, right) == ops.max_union(right, left)

    @given(atom_bags(), atom_bags(), atom_bags())
    def test_max_union_associative(self, a, b, c):
        assert (ops.max_union(ops.max_union(a, b), c)
                == ops.max_union(a, ops.max_union(b, c)))

    @given(atom_bags(), atom_bags())
    def test_intersection_commutative(self, left, right):
        assert (ops.intersection(left, right)
                == ops.intersection(right, left))

    @given(atom_bags(), atom_bags(), atom_bags())
    def test_intersection_associative(self, a, b, c):
        assert (ops.intersection(ops.intersection(a, b), c)
                == ops.intersection(a, ops.intersection(b, c)))

    @given(atom_bags(), atom_bags())
    def test_albert_identities(self, left, right):
        """[Alb91]: n and u are definable from (+) and -."""
        # B n B' = B - (B - B')
        assert (ops.intersection(left, right)
                == ops.subtraction(left, ops.subtraction(left, right)))
        # B u B' = B (+) (B' - B)
        assert (ops.max_union(left, right)
                == ops.additive_union(left, ops.subtraction(right, left)))

    @given(atom_bags())
    def test_dedup_idempotent(self, bag):
        assert ops.dedup(ops.dedup(bag)) == ops.dedup(bag)

    @given(small_multiplicity_bags())
    def test_powerset_members_are_subbags(self, bag):
        power = ops.powerset(bag)
        assert all(sub.is_subbag_of(bag) for sub in power.distinct())

    @given(small_multiplicity_bags())
    def test_powerbag_refines_powerset(self, bag):
        assert ops.dedup(ops.powerbag(bag)) == ops.powerset(bag)

    @given(small_multiplicity_bags())
    def test_powerbag_total_law(self, bag):
        assert ops.powerbag(bag).cardinality == 2 ** bag.cardinality

    @given(nested_bags())
    def test_destroy_of_map_beta_is_identity(self, bag):
        """delta(MAP_beta(B)) = B — bagging then flattening."""
        assert ops.bag_destroy(ops.map_bag(ops.bagging, bag)) == bag

    @given(flat_bags(arity=1))
    def test_cartesian_cardinalities_multiply(self, bag):
        product = ops.cartesian(bag, bag)
        assert product.cardinality == bag.cardinality ** 2
