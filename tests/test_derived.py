"""Tests for the paper's derived operators and worked queries
(repro.core.derived).  Every identity of Sections 3-4 is checked against
the primitive operators on random inputs."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ops
from repro.core.bag import Bag, EMPTY_BAG, Tup
from repro.core.derived import (
    MARKER, average_expr, bag_as_int, bag_even_native, card_at_least_expr,
    card_greater_expr, count_expr, derived_additive_union, derived_dedup,
    derived_subtraction, hartig_expr, in_degree_greater_expr, int_as_bag,
    is_nonempty, membership_expr, parity_even_expr, project_expr,
    rescher_expr, select_attr_eq_attr, select_attr_eq_const, sum_expr,
)
from repro.core.errors import BagTypeError
from repro.core.eval import evaluate
from repro.core.expr import Cartesian, Const, var
from repro.core.types import BagType, U, flat_tuple_type, type_of
from tests.conftest import flat_bags, nested_bags, small_multiplicity_bags


class TestProjectionAndSelectionHelpers:
    def test_project_reorders(self, sample_bag):
        swapped = evaluate(project_expr(var("B"), 2, 1), B=sample_bag)
        assert swapped.multiplicity(Tup("b", "a")) == 2

    def test_project_requires_indices(self):
        with pytest.raises(BagTypeError):
            project_expr(var("B"))

    def test_select_attr_eq_const(self, sample_bag):
        kept = evaluate(select_attr_eq_const(var("B"), 1, "a"),
                        B=sample_bag)
        assert kept == Bag.from_counts({Tup("a", "b"): 2})

    def test_select_attr_eq_attr(self):
        bag = Bag.of(Tup("a", "a"), Tup("a", "b"))
        kept = evaluate(select_attr_eq_attr(var("B"), 1, 2), B=bag)
        assert kept == Bag.of(Tup("a", "a"))


class TestSection4Table:
    """The worked occurrence-count table of Section 4."""

    @pytest.mark.parametrize("n,m", [(1, 1), (3, 2), (5, 0), (0, 4)])
    def test_occurrence_polynomials(self, n, m):
        bag = Bag.from_counts({Tup("a", "b"): n, Tup("b", "a"): m})
        query = project_expr(
            select_attr_eq_attr(Cartesian(var("B"), var("B")), 2, 3),
            1, 4)
        result = evaluate(query, B=bag)
        # Q(B): ab -> 0, ba -> 0, aa -> nm, bb -> nm
        assert result.multiplicity(Tup("a", "b")) == 0
        assert result.multiplicity(Tup("b", "a")) == 0
        assert result.multiplicity(Tup("a", "a")) == n * m
        assert result.multiplicity(Tup("b", "b")) == n * m

    @pytest.mark.parametrize("n,m", [(2, 3), (4, 1)])
    def test_intermediate_product_polynomials(self, n, m):
        bag = Bag.from_counts({Tup("a", "b"): n, Tup("b", "a"): m})
        product = evaluate(Cartesian(var("B"), var("B")), B=bag)
        assert product.multiplicity(Tup("a", "b", "a", "b")) == n * n
        assert product.multiplicity(Tup("b", "a", "b", "a")) == m * m
        assert product.multiplicity(Tup("b", "a", "a", "b")) == n * m
        selected = evaluate(
            select_attr_eq_attr(Cartesian(var("B"), var("B")), 2, 3),
            B=bag)
        assert selected.multiplicity(Tup("a", "b", "b", "a")) == n * m
        assert selected.multiplicity(Tup("a", "b", "a", "b")) == 0


class TestDerivedDedup:
    """Proposition 3.1: eps is redundant in full BALG."""

    @given(flat_bags(arity=2))
    def test_flat_tuples(self, bag):
        expr = derived_dedup(var("B"), flat_tuple_type(2))
        assert evaluate(expr, B=bag) == ops.dedup(bag)

    @given(nested_bags())
    def test_bag_elements(self, bag):
        expr = derived_dedup(var("B"), BagType(U))
        assert evaluate(expr, B=bag) == ops.dedup(bag)

    @given(st.lists(st.sampled_from(["a", "b"]), max_size=6))
    def test_atom_elements(self, elements):
        bag = Bag(elements)
        expr = derived_dedup(var("B"), U)
        assert evaluate(expr, B=bag) == ops.dedup(bag)

    def test_tuple_with_nested_attribute(self):
        bag = Bag.from_counts({
            Tup("a", Bag.of("x", "x")): 3,
            Tup("b", Bag.of("x")): 1,
        })
        element_type = type_of(bag).element
        expr = derived_dedup(var("B"), element_type)
        assert evaluate(expr, B=bag) == ops.dedup(bag)

    def test_empty_bag(self):
        expr = derived_dedup(var("B"), flat_tuple_type(1))
        assert evaluate(expr, B=EMPTY_BAG) == EMPTY_BAG


class TestDerivedSubtraction:
    """Section 3: minus is definable in BALG_{-minus} (by increasing
    the bag nesting)."""

    @given(small_multiplicity_bags(), small_multiplicity_bags())
    def test_matches_primitive(self, left, right):
        expr = derived_subtraction(var("L"), var("R"))
        assert evaluate(expr, L=left, R=right) == ops.subtraction(
            left, right)

    def test_disjoint_bags(self):
        left = Bag.of(Tup("a"))
        right = Bag.of(Tup("z"))
        expr = derived_subtraction(var("L"), var("R"))
        assert evaluate(expr, L=left, R=right) == left


class TestDerivedAdditiveUnion:
    """Section 3: (+) from maximal union via tagging."""

    @given(flat_bags(arity=2), flat_bags(arity=2))
    def test_matches_primitive(self, left, right):
        expr = derived_additive_union(var("L"), var("R"), 2)
        assert evaluate(expr, L=left, R=right) == ops.additive_union(
            left, right)

    def test_rejects_zero_arity(self):
        with pytest.raises(BagTypeError):
            derived_additive_union(var("L"), var("R"), 0)


class TestIntegerEncodingAndAggregates:
    def test_int_roundtrip(self):
        for value in [0, 1, 7]:
            assert bag_as_int(int_as_bag(value)) == value

    def test_int_rejects_negative(self):
        with pytest.raises(BagTypeError):
            int_as_bag(-1)

    @given(st.lists(st.integers(0, 6), min_size=0, max_size=5))
    def test_count(self, values):
        bag = Bag.from_counts(
            {Tup(f"row{i}", str(v)): 1 for i, v in enumerate(values)})
        counted = evaluate(count_expr(var("B")), B=bag)
        assert bag_as_int(counted) == len(values)

    def test_count_respects_duplicates(self):
        bag = Bag.from_counts({Tup("a"): 5})
        assert bag_as_int(evaluate(count_expr(var("B")), B=bag)) == 5

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=4))
    def test_sum(self, values):
        bag = Bag([int_as_bag(v) for v in values])
        # NB: equal integers collapse to equal bags, so the bag `bag`
        # holds each value with its multiplicity — sum still works.
        total = evaluate(sum_expr(var("B")), B=bag)
        assert bag_as_int(total) == sum(values)

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=4))
    def test_average(self, values):
        bag = Bag([int_as_bag(v) for v in values])
        result = evaluate(average_expr(var("B")), B=bag)
        total, n = sum(values), len(values)
        if total % n == 0:
            assert bag_as_int(result) == total // n
        else:
            assert result == EMPTY_BAG  # no integer average

    def test_average_of_equal_values(self):
        bag = Bag.from_counts({int_as_bag(3): 4})
        assert bag_as_int(evaluate(average_expr(var("B")), B=bag)) == 3


class TestCountingQuantifiers:
    @given(flat_bags(arity=1), flat_bags(arity=1))
    def test_card_greater(self, left, right):
        verdict = is_nonempty(evaluate(
            card_greater_expr(var("L"), var("R")), L=left, R=right))
        assert verdict == (left.cardinality > right.cardinality)

    @given(flat_bags(arity=1), st.integers(1, 6))
    def test_card_at_least(self, bag, threshold):
        verdict = is_nonempty(evaluate(
            card_at_least_expr(var("B"), threshold), B=bag))
        assert verdict == (bag.cardinality >= threshold)

    @given(flat_bags(arity=1), flat_bags(arity=1))
    def test_hartig(self, left, right):
        verdict = is_nonempty(evaluate(
            hartig_expr(var("L"), var("R")), L=left, R=right))
        assert verdict == (left.cardinality == right.cardinality)

    @given(flat_bags(arity=1), flat_bags(arity=1))
    def test_rescher(self, left, right):
        verdict = is_nonempty(evaluate(
            rescher_expr(var("L"), var("R")), L=left, R=right))
        assert verdict == (left.cardinality < right.cardinality)


class TestDegreeComparison:
    """Example 4.1."""

    def test_sink_node(self):
        graph = Bag.of(Tup("x", "a"), Tup("y", "a"), Tup("a", "z"))
        assert is_nonempty(evaluate(
            in_degree_greater_expr(var("G"), "a"), G=graph))

    def test_source_node(self):
        graph = Bag.of(Tup("a", "x"), Tup("a", "y"), Tup("z", "a"))
        assert not is_nonempty(evaluate(
            in_degree_greater_expr(var("G"), "a"), G=graph))

    def test_balanced_node(self):
        graph = Bag.of(Tup("x", "a"), Tup("a", "x"))
        assert not is_nonempty(evaluate(
            in_degree_greater_expr(var("G"), "a"), G=graph))

    def test_multigraph_edges_count(self):
        # Bags of edges make this a multigraph query: duplicates count.
        graph = Bag.from_counts({Tup("x", "a"): 3, Tup("a", "x"): 2})
        assert is_nonempty(evaluate(
            in_degree_greater_expr(var("G"), "a"), G=graph))

    @given(flat_bags(arity=2, max_size=10))
    def test_against_native_degree_count(self, graph):
        node = "a"
        in_degree = sum(count for edge, count in graph.items()
                        if edge.attribute(2) == node)
        out_degree = sum(count for edge, count in graph.items()
                         if edge.attribute(1) == node)
        verdict = is_nonempty(evaluate(
            in_degree_greater_expr(var("G"), node), G=graph))
        assert verdict == (in_degree > out_degree)


class TestParity:
    """Section 4: parity of a relation's cardinality, given an order."""

    @pytest.mark.parametrize("n", range(9))
    def test_all_small_cardinalities(self, n):
        relation = Bag([Tup(i) for i in range(n)])
        verdict = is_nonempty(evaluate(parity_even_expr(var("R")),
                                       R=relation))
        assert verdict == (n % 2 == 0 and n > 0)

    def test_empty_relation_has_no_witness(self):
        # The sigma ranges over R itself, so the empty relation yields
        # the empty bag even though 0 is even — the paper's expression
        # behaves the same way.
        assert not is_nonempty(evaluate(parity_even_expr(var("R")),
                                        R=EMPTY_BAG))

    def test_strings_order_too(self):
        relation = Bag([Tup(c) for c in "abcd"])
        assert is_nonempty(evaluate(parity_even_expr(var("R")),
                                    R=relation))


class TestMembership:
    def test_membership_expr(self, sample_bag):
        present = membership_expr(Const(Tup("a", "b")), var("B"))
        absent = membership_expr(Const(Tup("q", "q")), var("B"))
        assert is_nonempty(evaluate(present, B=sample_bag))
        assert not is_nonempty(evaluate(absent, B=sample_bag))


class TestBagEvenNative:
    @given(st.integers(0, 20))
    def test_parity(self, n):
        bag = Bag.from_counts({Tup("a"): n}) if n else EMPTY_BAG
        result = bag_even_native(bag)
        assert result == (bag if n % 2 == 0 else EMPTY_BAG)
